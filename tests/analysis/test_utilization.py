"""Tests for the link-utilization analysis."""

import pytest

from repro.analysis.utilization import measure_utilization
from repro.core.flow import FlowKind
from repro.sim import units


@pytest.fixture
def loaded_fabric(make_fabric, streams):
    from repro.experiments.config import scaled_video_mix
    from repro.traffic.mix import build_mix

    fabric = make_fabric("advanced-2vc")
    mix = build_mix(fabric, streams, scaled_video_mix(0.8, 0.02))
    mix.start()
    fabric.run(until=400 * units.US)
    return fabric


class TestMeasureUtilization:
    def test_one_entry_per_simplex_link(self, loaded_fabric):
        report = measure_utilization(loaded_fabric, 400 * units.US)
        assert len(report.links) == len(loaded_fabric.links)

    def test_utilization_bounded(self, loaded_fabric):
        report = measure_utilization(loaded_fabric, 400 * units.US)
        for load in report.links:
            assert 0.0 <= load.utilization <= 1.0

    def test_tier_classification(self, loaded_fabric):
        report = measure_utilization(loaded_fabric, 400 * units.US)
        tiers = {l.tier for l in report.links}
        assert tiers == {"host-up", "host-down", "fabric-up", "fabric-down"}

    def test_conservation_up_equals_down_at_spines(self, loaded_fabric):
        """Spines neither create nor absorb traffic: bytes entering the
        spine layer equal bytes leaving it."""
        report = measure_utilization(loaded_fabric, 400 * units.US)
        up = sum(l.bytes for l in report.links if l.tier == "fabric-up")
        down = sum(l.bytes for l in report.links if l.tier == "fabric-down")
        # In-flight residue at run end bounds the difference.
        assert abs(up - down) <= 64 * 2048

    def test_hotspots_sorted(self, loaded_fabric):
        report = measure_utilization(loaded_fabric, 400 * units.US)
        hot = report.hotspots(4)
        assert len(hot) == 4
        assert all(
            a.utilization >= b.utilization for a, b in zip(hot, hot[1:])
        )

    def test_admission_balances_the_spine_layer(self, loaded_fabric):
        """The load-balanced path assignment spreads uplink load: Jain's
        index near 1 across the leaf->spine links."""
        report = measure_utilization(loaded_fabric, 400 * units.US)
        assert report.fairness_index("fabric-up") > 0.9

    def test_table_renders(self, loaded_fabric):
        report = measure_utilization(loaded_fabric, 400 * units.US)
        text = report.table()
        assert "Hottest links" in text
        assert "fabric-up" in text

    def test_bad_window(self, loaded_fabric):
        with pytest.raises(ValueError):
            measure_utilization(loaded_fabric, 0)

    def test_idle_fabric_all_zero(self, make_fabric):
        fabric = make_fabric()
        report = measure_utilization(fabric, 1000)
        assert all(l.utilization == 0.0 for l in report.links)
        assert report.fairness_index() == 1.0  # vacuous fairness

    def test_single_flow_lights_one_path(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 15, "control", kind=FlowKind.CONTROL)
        fabric.submit(flow, 10_000)
        fabric.run(until=200 * units.US)
        report = measure_utilization(fabric, 200 * units.US)
        used = [l for l in report.links if l.bytes > 0]
        # host->leaf, leaf->spine, spine->leaf, leaf->host: 4 links.
        assert len(used) == 4
        assert {l.tier for l in used} == {
            "host-up",
            "fabric-up",
            "fabric-down",
            "host-down",
        }
