"""Tests for the tracing facility."""

import pytest

from repro.sim.monitor import NullTrace, Trace


class TestTrace:
    def test_records_everything_by_default(self):
        trace = Trace()
        trace.record(1, "a", "x")
        trace.record(2, "b")
        assert [(r.time, r.topic) for r in trace.records] == [(1, "a"), (2, "b")]

    def test_topic_filter(self):
        trace = Trace(topics={"keep"})
        trace.record(1, "keep", 1)
        trace.record(2, "drop", 2)
        assert len(trace.records) == 1
        assert trace.records[0].topic == "keep"

    def test_capacity_drops_and_counts(self):
        trace = Trace(capacity=2)
        for i in range(5):
            trace.record(i, "t")
        assert len(trace.records) == 2
        assert trace.dropped == 3

    def test_by_topic(self):
        trace = Trace()
        trace.record(1, "a")
        trace.record(2, "b")
        trace.record(3, "a")
        assert [r.time for r in trace.by_topic("a")] == [1, 3]

    def test_subscribe_delivers_synchronously(self):
        trace = Trace()
        seen = []
        trace.subscribe("evt", lambda rec: seen.append(rec.payload))
        trace.record(5, "evt", "data")
        trace.record(6, "other")
        assert seen == [("data",)]

    def test_subscribe_widens_topic_filter(self):
        trace = Trace(topics={"a"})
        seen = []
        trace.subscribe("b", seen.append)
        trace.record(1, "b", 1)
        assert len(seen) == 1

    def test_clear(self):
        trace = Trace(capacity=1)
        trace.record(1, "a")
        trace.record(2, "a")
        trace.clear()
        assert trace.records == []
        assert trace.dropped == 0


class TestNullTrace:
    def test_is_disabled_and_silent(self):
        null = NullTrace()
        assert null.enabled is False
        null.record(1, "anything", "payload")  # no-op, no error

    def test_cannot_subscribe(self):
        with pytest.raises(TypeError):
            NullTrace().subscribe("t", lambda r: None)
