"""Tests for unit helpers."""

import pytest

from repro.sim import units


class TestGbps:
    def test_paper_link_rate_is_one_byte_per_ns(self):
        assert units.gbps(8.0) == 1.0

    def test_other_rates(self):
        assert units.gbps(16.0) == 2.0
        assert units.gbps(4.0) == 0.5

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            units.gbps(0)
        with pytest.raises(ValueError):
            units.gbps(-1)


class TestSerialization:
    def test_exact_at_paper_rate(self):
        assert units.serialization_ns(2048, 1.0) == 2048

    def test_rounds_up(self):
        # 100 bytes at 0.3 B/ns = 333.33 ns -> 334
        assert units.serialization_ns(100, 0.3) == 334

    def test_zero_bytes(self):
        assert units.serialization_ns(0, 1.0) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            units.serialization_ns(-1, 1.0)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.serialization_ns(100, 0.0)


class TestConversions:
    def test_roundtrip_gbps(self):
        assert units.bytes_per_ns_to_gbps(units.gbps(8.0)) == 8.0

    def test_time_constants(self):
        assert units.MS == 1000 * units.US
        assert units.S == 1000 * units.MS

    def test_human_units(self):
        assert units.ns_to_us(2500) == 2.5
        assert units.ns_to_ms(3_000_000) == 3.0

    def test_size_constants(self):
        assert units.KB == 1024
        assert units.MB == 1024 * 1024
