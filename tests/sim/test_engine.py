"""Unit tests for the event kernel."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.at(30, order.append, "c")
        engine.at(10, order.append, "a")
        engine.at(20, order.append, "b")
        engine.run_all()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self, engine):
        order = []
        for tag in ("first", "second", "third"):
            engine.at(5, order.append, tag)
        engine.run_all()
        assert order == ["first", "second", "third"]

    def test_after_is_relative_to_now(self, engine):
        seen = []
        engine.at(100, lambda: engine.after(50, lambda: seen.append(engine.now)))
        engine.run_all()
        assert seen == [150]

    def test_now_is_event_time_during_callback(self, engine):
        times = []
        engine.at(42, lambda: times.append(engine.now))
        engine.run_all()
        assert times == [42]

    def test_scheduling_in_the_past_raises(self, engine):
        engine.at(100, lambda: None)
        engine.run_all()
        with pytest.raises(SimulationError):
            engine.at(50, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_zero_delay_fires_at_current_time(self, engine):
        seen = []
        engine.at(10, lambda: engine.after(0, seen.append, engine.now))
        engine.run_all()
        assert seen == [10]

    def test_callbacks_can_schedule_more_work(self, engine):
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 5:
                engine.after(10, chain)

        engine.at(0, chain)
        engine.run_all()
        assert count[0] == 5
        assert engine.now == 40


class TestRunWindow:
    def test_run_until_is_inclusive(self, engine):
        seen = []
        engine.at(100, seen.append, "boundary")
        engine.run(until=100)
        assert seen == ["boundary"]

    def test_run_until_stops_before_later_events(self, engine):
        seen = []
        engine.at(101, seen.append, "late")
        engine.run(until=100)
        assert seen == []
        assert engine.now == 100  # clock advances to the window edge

    def test_back_to_back_windows_are_contiguous(self, engine):
        seen = []
        engine.at(150, seen.append, "x")
        engine.run(until=100)
        engine.run(until=200)
        assert seen == ["x"]

    def test_run_into_the_past_raises(self, engine):
        engine.run(until=100)
        with pytest.raises(SimulationError):
            engine.run(until=50)

    def test_max_events_bounds_execution(self, engine):
        seen = []
        for i in range(10):
            engine.at(i, seen.append, i)
        executed = engine.run(max_events=3)
        assert executed == 3
        assert seen == [0, 1, 2]

    def test_stop_from_callback(self, engine):
        seen = []
        engine.at(1, seen.append, 1)
        engine.at(2, lambda: (seen.append(2), engine.stop()))
        engine.at(3, seen.append, 3)
        engine.run_all()
        assert seen == [1, 2]

    def test_run_returns_executed_count(self, engine):
        for i in range(4):
            engine.at(i, lambda: None)
        assert engine.run_all() == 4
        assert engine.events_executed == 4

    def test_reentrant_run_raises(self, engine):
        def nested():
            engine.run(until=10)

        engine.at(1, nested)
        with pytest.raises(SimulationError):
            engine.run_all()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        seen = []
        handle = engine.at(10, seen.append, "no")
        handle.cancel()
        engine.run_all()
        assert seen == []

    def test_cancel_is_idempotent(self, engine):
        handle = engine.at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run_all()

    def test_cancel_one_of_many(self, engine):
        seen = []
        keep = engine.at(10, seen.append, "keep")
        drop = engine.at(10, seen.append, "drop")
        drop.cancel()
        engine.run_all()
        assert seen == ["keep"]

    def test_peek_time_skips_cancelled(self, engine):
        first = engine.at(5, lambda: None)
        engine.at(10, lambda: None)
        first.cancel()
        assert engine.peek_time() == 10

    def test_peek_time_empty_heap(self, engine):
        assert engine.peek_time() is None


class TestConstruction:
    def test_start_time(self):
        engine = Engine(start_time=500)
        assert engine.now == 500

    def test_negative_start_time_raises(self):
        with pytest.raises(SimulationError):
            Engine(start_time=-1)
