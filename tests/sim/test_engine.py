"""Unit tests for the event kernel.

The timing-wheel engine has three internal regimes -- hot slot (single
pending event), wheel buckets (within the horizon), and the overflow
heap (beyond it) -- plus transitions between them at every clock
advancement.  The classes below cover the public contract; the
``TestWheelRegimes`` class drives every regime boundary explicitly.
Byte-for-bit equivalence with the reference heap engine is proven
separately in ``test_engine_differential.py``.
"""

import pytest

from repro.sim.engine import _DEFAULT_WHEEL_SLOTS, Engine, SimulationError

#: A delay guaranteed to land beyond the wheel horizon (overflow heap).
FAR = _DEFAULT_WHEEL_SLOTS * 3 + 7


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.at(30, order.append, "c")
        engine.at(10, order.append, "a")
        engine.at(20, order.append, "b")
        engine.run_all()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self, engine):
        order = []
        for tag in ("first", "second", "third"):
            engine.at(5, order.append, tag)
        engine.run_all()
        assert order == ["first", "second", "third"]

    def test_after_is_relative_to_now(self, engine):
        seen = []
        engine.at(100, lambda: engine.after(50, lambda: seen.append(engine.now)))
        engine.run_all()
        assert seen == [150]

    def test_now_is_event_time_during_callback(self, engine):
        times = []
        engine.at(42, lambda: times.append(engine.now))
        engine.run_all()
        assert times == [42]

    def test_scheduling_in_the_past_raises(self, engine):
        engine.at(100, lambda: None)
        engine.run_all()
        with pytest.raises(SimulationError):
            engine.at(50, lambda: None)

    def test_scheduling_in_the_past_raises_with_pending_work(self, engine):
        # Same check on the non-hot path: the engine already holds events.
        engine.at(100, lambda: None)
        engine.at(200, lambda: None)
        engine.run(until=150)
        with pytest.raises(SimulationError):
            engine.at(140, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_negative_delay_raises_with_pending_work(self, engine):
        engine.after(10, lambda: None)
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_zero_delay_fires_at_current_time(self, engine):
        seen = []
        engine.at(10, lambda: engine.after(0, seen.append, engine.now))
        engine.run_all()
        assert seen == [10]

    def test_callbacks_can_schedule_more_work(self, engine):
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 5:
                engine.after(10, chain)

        engine.at(0, chain)
        engine.run_all()
        assert count[0] == 5
        assert engine.now == 40


class TestRunWindow:
    def test_run_until_is_inclusive(self, engine):
        seen = []
        engine.at(100, seen.append, "boundary")
        engine.run(until=100)
        assert seen == ["boundary"]

    def test_run_until_stops_before_later_events(self, engine):
        seen = []
        engine.at(101, seen.append, "late")
        engine.run(until=100)
        assert seen == []
        assert engine.now == 100  # clock advances to the window edge

    def test_back_to_back_windows_are_contiguous(self, engine):
        seen = []
        engine.at(150, seen.append, "x")
        engine.run(until=100)
        engine.run(until=200)
        assert seen == ["x"]

    def test_run_into_the_past_raises(self, engine):
        engine.run(until=100)
        with pytest.raises(SimulationError):
            engine.run(until=50)

    def test_max_events_bounds_execution(self, engine):
        seen = []
        for i in range(10):
            engine.at(i, seen.append, i)
        executed = engine.run(max_events=3)
        assert executed == 3
        assert seen == [0, 1, 2]

    def test_max_events_resumes_mid_timestamp(self, engine):
        # Five same-time events with the limit landing mid-bucket: the
        # next run() must resume with the unconsumed tail, in order.
        seen = []
        for i in range(5):
            engine.at(7, seen.append, i)
        assert engine.run(max_events=2) == 2
        assert seen == [0, 1]
        assert engine.run_all() == 3
        assert seen == [0, 1, 2, 3, 4]

    def test_stop_from_callback(self, engine):
        seen = []
        engine.at(1, seen.append, 1)
        engine.at(2, lambda: (seen.append(2), engine.stop()))
        engine.at(3, seen.append, 3)
        engine.run_all()
        assert seen == [1, 2]

    def test_stop_mid_timestamp_resumes_in_order(self, engine):
        seen = []
        engine.at(2, seen.append, "a")
        engine.at(2, lambda: (seen.append("stop"), engine.stop()))
        engine.at(2, seen.append, "b")
        engine.run_all()
        assert seen == ["a", "stop"]
        engine.run_all()
        assert seen == ["a", "stop", "b"]

    def test_run_returns_executed_count(self, engine):
        for i in range(4):
            engine.at(i, lambda: None)
        assert engine.run_all() == 4
        assert engine.events_executed == 4

    def test_reentrant_run_raises(self, engine):
        def nested():
            engine.run(until=10)

        engine.at(1, nested)
        with pytest.raises(SimulationError):
            engine.run_all()


class TestCancellation:
    def test_plain_schedule_returns_no_handle(self, engine):
        # at/after are the allocation-free fast path: no handle.
        assert engine.at(10, lambda: None) is None
        assert engine.after(10, lambda: None) is None

    def test_cancelled_event_does_not_fire(self, engine):
        seen = []
        handle = engine.at_cancellable(10, seen.append, "no")
        handle.cancel()
        engine.run_all()
        assert seen == []

    def test_cancel_is_idempotent(self, engine):
        handle = engine.at_cancellable(10, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run_all()

    def test_cancel_one_of_many(self, engine):
        seen = []
        engine.at_cancellable(10, seen.append, "keep")
        drop = engine.at_cancellable(10, seen.append, "drop")
        drop.cancel()
        engine.run_all()
        assert seen == ["keep"]

    def test_cancellable_after_is_relative(self, engine):
        seen = []
        engine.at(100, lambda: engine.after_cancellable(50, seen.append, "x"))
        engine.run_all()
        assert seen == ["x"]
        assert engine.now == 150

    def test_cancel_far_future_event(self, engine):
        seen = []
        handle = engine.at_cancellable(FAR, seen.append, "no")
        engine.at(1, seen.append, "yes")
        handle.cancel()
        engine.run_all()
        assert seen == ["yes"]
        assert engine.tombstones_discarded >= 1

    def test_cancelled_handles_are_pooled(self, engine):
        first = engine.at_cancellable(10, lambda: None)
        first.cancel()
        second = engine.at_cancellable(20, lambda: None)
        # The relinquished handle object is recycled for the next arm.
        assert second is first
        assert not second.cancelled
        assert second.time == 20

    def test_peek_time_skips_cancelled(self, engine):
        first = engine.at_cancellable(5, lambda: None)
        engine.at(10, lambda: None)
        first.cancel()
        assert engine.peek_time() == 10

    def test_peek_time_empty_engine(self, engine):
        assert engine.peek_time() is None

    def test_peek_time_sees_hot_slot(self, engine):
        engine.after(37, lambda: None)
        assert engine.peek_time() == 37

    def test_peek_time_skips_cancelled_overflow(self, engine):
        handle = engine.at_cancellable(FAR, lambda: None)
        engine.at(FAR + 10, lambda: None)
        handle.cancel()
        assert engine.peek_time() == FAR + 10

    def test_tombstone_counters(self, engine):
        handle = engine.at_cancellable(5, lambda: None)
        engine.at(5, lambda: None)
        handle.cancel()
        engine.run_all()
        assert engine.tombstones_discarded == 1
        assert engine.events_executed == 1
        assert engine.tombstone_ratio == 0.5


class TestWheelRegimes:
    """Drive the hot-slot / wheel / overflow boundaries explicitly."""

    def test_far_future_events_cross_the_horizon(self, engine):
        order = []
        engine.at(FAR, order.append, "far")
        engine.at(3, order.append, "near")
        engine.run_all()
        assert order == ["near", "far"]
        assert engine.now == FAR

    def test_same_time_order_across_overflow_and_wheel(self, engine):
        # Scheduled-first-fires-first must hold even when the earlier
        # event takes the overflow route and the later one is appended
        # directly to the bucket after the clock has advanced.
        order = []
        t = FAR

        def near_rider():
            engine.at(t, order.append, "direct")

        engine.at(t, order.append, "overflow")  # beyond horizon now
        engine.at(t - 5, near_rider)  # schedules "direct" once t is in-window
        engine.run_all()
        assert order == ["overflow", "direct"]

    def test_overflow_entries_keep_schedule_order(self, engine):
        order = []
        for tag in ("a", "b", "c"):
            engine.at(FAR, order.append, tag)
        engine.run_all()
        assert order == ["a", "b", "c"]

    def test_run_until_parks_across_the_horizon(self, engine):
        # Repeated run(until=...) windows each advance the clock; events
        # far beyond every window must still fire exactly on time.
        seen = []
        engine.at(FAR, lambda: seen.append(engine.now))
        for i in range(1, 10):
            engine.run(until=i * 1000)
        engine.run_all()
        assert seen == [FAR]

    def test_hot_slot_spills_in_order(self, engine):
        # First event parks hot; the second (earlier!) forces a spill.
        order = []
        engine.at(50, order.append, "second")
        engine.at(10, order.append, "first")
        engine.run_all()
        assert order == ["first", "second"]

    def test_hot_slot_same_time_spill_keeps_schedule_order(self, engine):
        order = []
        engine.at(5, order.append, "first")
        engine.at(5, order.append, "second")
        engine.run_all()
        assert order == ["first", "second"]

    def test_hot_event_scheduled_mid_bucket_fires_after_bucket(self, engine):
        # A zero-delay event scheduled from inside a bucket must fire
        # after the bucket-mates that were scheduled before it.
        order = []

        def rider():
            order.append("rider")
            engine.after(0, order.append, "hot")

        engine.at(4, rider)
        engine.at(4, order.append, "mate")
        engine.run_all()
        assert order == ["rider", "mate", "hot"]

    def test_limit_break_then_hot_respects_pushed_back_bucket(self, engine):
        # Regression for the one hot/wheel coexistence case: a bucket
        # pushed back by max_events plus a hot event armed mid-bucket.
        order = []

        def first():
            order.append("first")
            engine.after(0, order.append, "hot")

        engine.at(2, first)
        engine.at(2, order.append, "second")
        engine.run(max_events=1)
        engine.run_all()
        assert order == ["first", "second", "hot"]

    def test_pending_counts_all_regimes(self, engine):
        engine.after(1, lambda: None)  # hot
        assert engine.pending == 1
        engine.after(2, lambda: None)  # forces spill -> wheel x2
        assert engine.pending == 2
        engine.after(FAR, lambda: None)  # overflow
        assert engine.pending == 3
        engine.run_all()
        assert engine.pending == 0

    def test_wheel_stats_shape(self, engine):
        engine.after(1, lambda: None)
        stats = engine.wheel_stats()
        assert stats["hot_armed"] is True
        assert stats["occupied_buckets"] == 0
        engine.after(FAR, lambda: None)
        stats = engine.wheel_stats()
        assert stats["hot_armed"] is False
        assert stats["occupied_buckets"] == 1
        assert stats["overflow_pending"] == 1
        engine.run_all()
        assert engine.wheel_stats()["pending"] == 0

    def test_small_wheel_still_correct(self):
        # A 4-slot wheel pushes nearly everything through the overflow
        # machinery -- worst case for the drain logic.
        engine = Engine(wheel_slots=4)
        order = []
        for t in (17, 3, 9, 3, 64, 2, 33):
            engine.at(t, order.append, t)
        engine.run_all()
        assert order == [2, 3, 3, 9, 17, 33, 64]

    def test_wheel_slots_must_be_power_of_two(self):
        with pytest.raises(SimulationError):
            Engine(wheel_slots=1000)


class TestConstruction:
    def test_start_time(self):
        engine = Engine(start_time=500)
        assert engine.now == 500

    def test_negative_start_time_raises(self):
        with pytest.raises(SimulationError):
            Engine(start_time=-1)
