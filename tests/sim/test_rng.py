"""Tests for named RNG streams."""

from repro.sim.rng import RandomStreams, derive_seed


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_different_draws(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_different_draws(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_construction_order_does_not_matter(self):
        """Adding a new component must not perturb existing streams."""
        early = RandomStreams(9)
        seq_before = [early.stream("traffic.h0").random() for _ in range(5)]

        late = RandomStreams(9)
        late.stream("brand.new.component")  # created first this time
        seq_after = [late.stream("traffic.h0").random() for _ in range(5)]
        assert seq_before == seq_after


class TestSpawn:
    def test_spawned_streams_disjoint_from_parent(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_spawn_is_deterministic(self):
        a = RandomStreams(7).spawn("c").stream("x").random()
        b = RandomStreams(7).spawn("c").stream("x").random()
        assert a == b


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "some.stream.name")
        assert 0 <= seed < 2**64

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
