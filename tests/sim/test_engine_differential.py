"""Differential proof: timing-wheel engine == binary-heap reference.

The wheel engine's only license to exist is byte-for-bit equivalence
with the reference heap engine (`repro.sim.heap_engine.HeapEngine`,
the pre-overhaul kernel kept verbatim).  Two layers of evidence:

1. A Hypothesis property drives both engines through the *same* random
   interleaving of schedule / cancellable-schedule / cancel /
   ``run(until)`` / ``run(max_events)`` operations -- including
   callbacks that schedule more work, zero delays, and delays far past
   the wheel horizon -- and requires identical execution logs
   ``(time, tag)``, clocks, and counters at every observation point.

2. The three figure-style experiment configs (fig2 control / fig3
   video / fig4 best-effort shapes) run end-to-end under both engines
   and must produce **byte-identical** ``RunSummary`` JSON and
   span-trace JSONL output.
"""

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.summary import summarize_run
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.obs.tracing import PacketTracer, write_spans_jsonl
from repro.sim import units
from repro.sim.engine import _DEFAULT_WHEEL_SLOTS, Engine
from repro.sim.heap_engine import HeapEngine

# Delays deliberately straddle the wheel horizon so the overflow heap,
# the drain-on-advance path, and the in-window fast path all see load.
_MAX_DELAY = _DEFAULT_WHEEL_SLOTS * 3


class _Driver:
    """Apply one op sequence to an engine, logging every dispatch."""

    def __init__(self, engine):
        self.engine = engine
        self.log = []
        self.handles = []
        self.target = 0
        self._tag = 0

    def _fire(self, tag, respawn_delay):
        self.log.append((self.engine.now, tag))
        if respawn_delay is not None:
            # Callback-scheduled follow-up: exercises the hot slot and
            # same-bucket append-during-iteration paths.
            self.engine.after(respawn_delay, self._fire, tag + 1_000_000, None)

    def apply(self, op):
        kind = op[0]
        if kind == "at":
            _, delay, cancellable, respawn = op
            self._tag += 1
            respawn_delay = delay % 7 if respawn else None
            if cancellable:
                self.handles.append(
                    self.engine.after_cancellable(
                        delay, self._fire, self._tag, respawn_delay
                    )
                )
            else:
                self.engine.after(delay, self._fire, self._tag, respawn_delay)
        elif kind == "cancel":
            if self.handles:
                self.handles.pop(op[1] % len(self.handles)).cancel()
        elif kind == "run_until":
            self.target = max(self.target, self.engine.now) + op[1]
            self.log.append(("ran", self.engine.run(until=self.target)))
        elif kind == "run_max":
            self.log.append(("ran", self.engine.run(max_events=op[1])))
        self.observe()

    def observe(self):
        self.log.append(("obs", self.engine.now, self.engine.pending))

    def finish(self):
        self.log.append(("final", self.engine.run_all()))
        self.observe()
        assert self.engine.peek_time() is None
        return self.log


_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("at"),
            st.integers(min_value=0, max_value=_MAX_DELAY),
            st.booleans(),
            st.booleans(),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=31)),
        st.tuples(st.just("run_until"), st.integers(min_value=0, max_value=_MAX_DELAY)),
        st.tuples(st.just("run_max"), st.integers(min_value=0, max_value=6)),
    ),
    max_size=40,
)


class TestEngineEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(ops=_OPS)
    def test_random_interleavings_execute_identically(self, ops):
        wheel = _Driver(Engine())
        heap = _Driver(HeapEngine())
        for op in ops:
            wheel.apply(op)
            heap.apply(op)
        assert wheel.finish() == heap.finish()
        assert wheel.engine.events_executed == heap.engine.events_executed

    @settings(max_examples=50, deadline=None)
    @given(ops=_OPS, slots=st.sampled_from([4, 16, 256]))
    def test_equivalence_holds_for_tiny_wheels(self, ops, slots):
        # Small wheels force nearly all traffic through the overflow
        # heap -- the drain logic's worst case.
        wheel = _Driver(Engine(wheel_slots=slots))
        heap = _Driver(HeapEngine())
        for op in ops:
            wheel.apply(op)
            heap.apply(op)
        assert wheel.finish() == heap.finish()


# ----------------------------------------------------------------------
# end-to-end: figure-style configs, byte-identical artifacts
# ----------------------------------------------------------------------
def _figure_configs():
    short = dict(
        topology="tiny",
        warmup_ns=50 * units.US,
        measure_ns=150 * units.US,
    )
    return {
        "fig2-control": ExperimentConfig(
            architecture="traditional-2vc", load=0.8, seed=11, **short
        ),
        "fig3-video": ExperimentConfig(
            architecture="advanced-2vc",
            load=0.7,
            seed=12,
            mix=scaled_video_mix(0.7, time_scale=0.02),
            **short,
        ),
        "fig4-best-effort": ExperimentConfig(
            architecture="simple-2vc", load=1.0, seed=13, **short
        ),
    }


def _run_artifacts(config, engine_factory):
    tracer = PacketTracer(policy="head", rate=1.0, capacity=1 << 14, seed=7)
    result = run_experiment(config, tracer=tracer, engine_factory=engine_factory)
    doc = summarize_run(result).to_dict()
    # Wall-clock is the one legitimately nondeterministic field.
    doc.pop("wall_seconds")
    summary_bytes = json.dumps(doc, sort_keys=True).encode()
    spans = io.StringIO()
    write_spans_jsonl(tracer, spans)
    return summary_bytes, spans.getvalue().encode()


class TestFigureConfigDigests:
    def test_figure_configs_byte_identical_across_engines(self):
        for name, config in _figure_configs().items():
            wheel_summary, wheel_spans = _run_artifacts(config, None)
            heap_summary, heap_spans = _run_artifacts(config, HeapEngine)
            assert wheel_summary == heap_summary, f"{name}: RunSummary diverged"
            assert wheel_spans == heap_spans, f"{name}: span traces diverged"
            assert b'"events_executed"' in wheel_summary
