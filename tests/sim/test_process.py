"""Tests for the coroutine process layer."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.process import Delay, Process, Signal, process


class TestDelay:
    def test_sequential_delays(self, engine):
        log = []

        def worker():
            log.append(engine.now)
            yield Delay(100)
            log.append(engine.now)
            yield Delay(50)
            log.append(engine.now)

        process(engine, worker())
        engine.run_all()
        assert log == [0, 100, 150]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-5)

    def test_process_return_value(self, engine):
        def worker():
            yield Delay(10)
            return "done"

        proc = process(engine, worker())
        engine.run_all()
        assert proc.alive is False
        assert proc.value == "done"


class TestSignal:
    def test_trigger_wakes_waiter_with_value(self, engine):
        received = []

        def consumer(sig):
            value = yield sig
            received.append((engine.now, value))

        def producer(sig):
            yield Delay(75)
            sig.trigger("payload")

        sig = Signal()
        process(engine, consumer(sig))
        process(engine, producer(sig))
        engine.run_all()
        assert received == [(75, "payload")]

    def test_trigger_wakes_all_current_waiters(self, engine):
        woken = []

        def waiter(name, sig):
            yield sig
            woken.append(name)

        sig = Signal()
        process(engine, waiter("a", sig))
        process(engine, waiter("b", sig))
        engine.at(10, sig.trigger)
        engine.run_all()
        assert sorted(woken) == ["a", "b"]

    def test_no_latching(self, engine):
        """A waiter registered after a trigger waits for the next one."""
        woken = []

        def late_waiter(sig):
            yield Delay(20)  # trigger happens at t=10, we start waiting at 20
            yield sig
            woken.append(engine.now)

        sig = Signal()
        process(engine, late_waiter(sig))
        engine.at(10, sig.trigger)
        engine.at(30, sig.trigger)
        engine.run_all()
        assert woken == [30]

    def test_trigger_reports_woken_count(self, engine):
        sig = Signal()

        def waiter(sig):
            yield sig

        process(engine, waiter(sig))
        engine.run(until=1)
        assert sig.trigger() == 1
        assert sig.trigger() == 0


class TestProcessComposition:
    def test_wait_on_another_process(self, engine):
        log = []

        def child():
            yield Delay(100)
            return 42

        def parent():
            result = yield process(engine, child())
            log.append((engine.now, result))

        process(engine, parent())
        engine.run_all()
        assert log == [(100, 42)]

    def test_kill_stops_process(self, engine):
        log = []

        def worker():
            while True:
                yield Delay(10)
                log.append(engine.now)

        proc = process(engine, worker())
        engine.run(until=35)
        proc.kill()
        engine.run(until=100)
        assert log == [10, 20, 30]
        assert proc.alive is False

    def test_bad_yield_raises(self, engine):
        def worker():
            yield "not a delay"

        process(engine, worker())
        with pytest.raises(SimulationError):
            engine.run_all()
