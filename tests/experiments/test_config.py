"""Tests for experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.presets import TOPOLOGY_PRESETS, make_topology
from repro.sim import units


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.mix_config.load == config.load
        assert config.end_ns == config.warmup_ns + config.measure_ns

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="ideal"):
            ExperimentConfig(architecture="nope")

    def test_explicit_mix_wins(self):
        mix = scaled_video_mix(0.5, 0.1)
        config = ExperimentConfig(load=0.9, mix=mix)
        assert config.mix_config.load == 0.5

    def test_with_updates(self):
        config = ExperimentConfig(load=0.5)
        updated = config.with_(load=0.9, architecture="ideal")
        assert updated.load == 0.9
        assert updated.architecture == "ideal"
        assert config.load == 0.5  # original untouched

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            ExperimentConfig(measure_ns=0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_ns=-1)


class TestScaledVideoMix:
    def test_scale_relations(self):
        mix = scaled_video_mix(1.0, time_scale=0.1)
        # Period shrinks 10x, per-stream rate grows 10x: frame sizes and
        # packet counts per frame are unchanged.
        assert mix.video_fps == 250.0
        assert mix.video_target_latency_ns == 1 * units.MS
        assert mix.video_stream_rate_bytes_per_ns == pytest.approx(0.015)
        frame_bytes = mix.video_stream_rate_bytes_per_ns * (units.S / mix.video_fps)
        unscaled = scaled_video_mix(1.0, time_scale=1.0)
        unscaled_frame = (
            unscaled.video_stream_rate_bytes_per_ns * (units.S / unscaled.video_fps)
        )
        assert frame_bytes == pytest.approx(unscaled_frame)

    def test_identity_scale(self):
        mix = scaled_video_mix(0.7, time_scale=1.0)
        assert mix.video_fps == 25.0
        assert mix.video_target_latency_ns == 10 * units.MS

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_video_mix(1.0, time_scale=0.0)
        with pytest.raises(ValueError):
            scaled_video_mix(1.0, time_scale=2.0)


class TestPresets:
    def test_all_presets_build_and_validate(self):
        for name in TOPOLOGY_PRESETS:
            topo = make_topology(name)
            topo.validate()

    def test_paper_preset_is_the_paper_network(self):
        topo = make_topology("paper")
        assert topo.n_hosts == 128
        assert all(topo.radix(sw) == 16 for sw in topo.switch_ids)

    def test_full_bisection_everywhere(self):
        """No preset introduces oversubscription the paper lacks."""
        for name, (leaves, hosts, spines) in TOPOLOGY_PRESETS.items():
            assert spines >= hosts, f"{name} is oversubscribed"

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="paper"):
            make_topology("gigantic")
