"""Tests for the repro-qos command-line interface.

Simulation-backed commands run at micro scale so the whole module stays
in test-suite time budgets.
"""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--topology", "tiny", "--warmup-us", "50", "--measure-us", "120"]


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_architecture_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arch", "bogus"])

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "gigantic"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig3"])
        assert args.figure == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])


class TestListCommand:
    def test_lists_architectures_and_presets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("traditional-2vc", "ideal", "simple-2vc", "advanced-2vc"):
            assert name in out
        assert "128 hosts" in out


class TestRunCommand:
    def test_table_output(self, capsys):
        assert main(["run", "--arch", "advanced-2vc", "--load", "0.5", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Advanced 2 VCs" in out
        assert "control" in out

    def test_json_output(self, capsys):
        assert main(["run", "--load", "0.5", "--json", *FAST]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["architecture"] == "advanced-2vc"
        assert doc["classes"]["control"]["packets"] > 0


class TestFigureCommand:
    def test_fig2_text(self, capsys):
        assert (
            main(
                ["figure", "fig2", "--loads", "0.5", "--archs", "ideal", "simple-2vc", *FAST]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Ideal" in out

    def test_fig4_csv_export(self, capsys, tmp_path):
        out_path = tmp_path / "fig4.csv"
        assert (
            main(
                [
                    "figure", "fig4", "--loads", "0.5", "--archs", "ideal",
                    "--out", str(out_path), *FAST,
                ]
            )
            == 0
        )
        text = out_path.read_text()
        assert text.startswith("architecture,load")


class TestClaimsCommand:
    def test_prints_penalties(self, capsys):
        assert main(["claims", "--load", "0.8", *FAST]) == 0
        out = capsys.readouterr().out
        assert "relative to Ideal" in out
        assert "Advanced 2 VCs" in out


class TestReplicateCommand:
    def test_prints_confidence_intervals(self, capsys):
        assert (
            main(["replicate", "--load", "0.5", "--seeds", "1", "2", *FAST]) == 0
        )
        out = capsys.readouterr().out
        assert "2 seeds" in out
        assert "control" in out
        assert "[" in out  # the CI brackets


class TestCostCommand:
    def test_prints_cost_table(self, capsys):
        assert main(["cost", "--load", "0.5", *FAST]) == 0
        out = capsys.readouterr().out
        assert "comparisons/pkt" in out
        assert "ideal" in out


class TestUtilizationCommand:
    def test_prints_hotspots_and_fairness(self, capsys):
        assert main(["utilization", "--load", "0.5", "--hotspots", "3", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Hottest links" in out
        assert "fairness index" in out


class TestFigure3Command:
    def test_fig3_text(self, capsys):
        assert (
            main(["figure", "fig3", "--loads", "0.5", "--archs", "ideal", *FAST]) == 0
        )
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "lat/target" in out


class TestParallelSweep:
    """--jobs / --cache-dir: determinism and warm-replay guarantees."""

    FIG2 = [
        "figure", "fig2", "--loads", "0.5",
        "--archs", "ideal", "traditional-2vc", *FAST,
    ]

    def test_jobs4_stdout_byte_identical_to_jobs1(self, capsys):
        """The acceptance criterion: figure output is byte-identical at
        any --jobs (deterministic submission-index merge)."""
        assert main([*self.FIG2, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*self.FIG2, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_stats_go_to_stderr(self, capsys):
        assert main([*self.FIG2, "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "[sweep:" not in captured.out
        assert "[sweep: 2 points, 0 cached, 2 executed, jobs=2]" in captured.err

    def test_warm_cache_rerun_executes_nothing(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path)]
        assert main([*self.FIG2, *cache]) == 0
        cold = capsys.readouterr()
        assert "2 executed" in cold.err
        assert main([*self.FIG2, *cache]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "[sweep: 2 points, 2 cached, 0 executed, jobs=1]" in warm.err

    def test_claims_accepts_jobs(self, capsys):
        assert main(["claims", "--load", "0.5", "--jobs", "2", *FAST]) == 0
        captured = capsys.readouterr()
        assert "relative to Ideal" in captured.out
        assert "4 points" in captured.err

    def test_replicate_jobs_matches_serial(self, capsys):
        rep = ["replicate", "--load", "0.5", "--seeds", "1", "2", *FAST]
        assert main([*rep, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*rep, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
