"""Tests for the figure-sweep layer (using one tiny shared sweep)."""

import pytest

from repro.experiments.config import scaled_video_mix
from repro.experiments.figures import (
    FigureSeries,
    fig2_control,
    fig3_video,
    fig4_best_effort,
    order_error_penalties,
    sweep,
)
from repro.sim import units

ARCHS = ("ideal", "traditional-2vc")
LOADS = (0.5,)


@pytest.fixture(scope="module")
def results():
    return sweep(
        ARCHS,
        LOADS,
        topology="tiny",
        seed=2,
        warmup_ns=80 * units.US,
        # long enough for video frames (200 us target, 800 us period at
        # this scale) born after warm-up to complete inside the window
        measure_ns=600 * units.US,
        mix_factory=lambda load: scaled_video_mix(load, 0.02),
    )


class TestSweep:
    def test_one_result_per_cell(self, results):
        assert set(results) == {(a, l) for a in ARCHS for l in LOADS}

    def test_architectures_differ(self, results):
        ideal = results[("ideal", 0.5)].get("control").packet_latency.mean
        trad = results[("traditional-2vc", 0.5)].get("control").packet_latency.mean
        assert ideal != trad


class TestFigureFunctions:
    def test_fig2_rows_and_cdfs(self, results):
        series = fig2_control(ARCHS, LOADS, results=results, cdf_points=5)
        assert len(series.rows) == len(ARCHS) * len(LOADS)
        assert set(series.cdfs) == {"Ideal", "Traditional 2 VCs"}
        for curve in series.cdfs.values():
            assert len(curve) == 5
            assert curve[-1][1] == 1.0

    def test_fig3_reports_scale_free_ratio(self, results):
        series = fig3_video(ARCHS, LOADS, results=results, time_scale=0.02, cdf_points=5)
        ratio_column = series.headers.index("lat/target")
        ideal_rows = [r for r in series.rows if r[0] == "Ideal"]
        assert ideal_rows[0][ratio_column] == pytest.approx(1.0, rel=0.3)

    def test_fig4_ratio_column(self, results):
        series = fig4_best_effort(ARCHS, LOADS, results=results)
        ratio_column = series.headers.index("BE:BG")
        for row in series.rows:
            assert row[ratio_column] > 0

    def test_penalties_include_all_archs(self):
        local = sweep(
            ("ideal", "simple-2vc", "advanced-2vc", "traditional-2vc"),
            (0.5,),
            topology="tiny",
            seed=2,
            warmup_ns=80 * units.US,
            measure_ns=150 * units.US,
        )
        penalties = order_error_penalties(load=0.5, results=local)
        assert penalties["ideal"] == 1.0
        assert set(penalties) == {
            "ideal",
            "simple-2vc",
            "advanced-2vc",
            "traditional-2vc",
        }


class TestFigureSeriesText:
    def test_text_rendering(self):
        series = FigureSeries(
            figure="Demo",
            headers=["a", "b"],
            rows=[["x", 1.0]],
            cdfs={"x": [(10.0, 0.5), (20.0, 1.0)]},
            notes=["hello"],
        )
        text = series.text()
        assert "Demo" in text
        assert "CDF at full load" in text
        assert "# hello" in text

    def test_text_without_cdfs(self):
        series = FigureSeries(figure="D", headers=["a"], rows=[[1]])
        assert "CDF" not in series.text()
