"""Tests for multi-seed replication and result export."""

import json

import pytest

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.export import (
    figure_to_csv,
    figure_to_json,
    result_to_json,
    write_figure,
)
from repro.experiments.figures import FigureSeries
from repro.experiments.replication import MetricSummary, replicate, run_one
from repro.sim import units


def quick_config(**overrides):
    defaults = dict(
        architecture="advanced-2vc",
        load=0.5,
        topology="tiny",
        warmup_ns=50 * units.US,
        measure_ns=150 * units.US,
        mix=scaled_video_mix(0.5, time_scale=0.02),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestMetricSummary:
    def test_mean_std(self):
        summary = MetricSummary("x", (1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)

    def test_ci_contains_mean(self):
        summary = MetricSummary("x", (10.0, 12.0, 11.0, 9.0))
        lo, hi = summary.ci95
        assert lo < summary.mean < hi

    def test_single_sample_ci_degenerate(self):
        summary = MetricSummary("x", (5.0,))
        assert summary.ci95 == (5.0, 5.0)

    def test_overlap(self):
        a = MetricSummary("a", (10.0, 11.0, 10.5))
        b = MetricSummary("b", (10.6, 11.4, 11.0))
        c = MetricSummary("c", (50.0, 51.0, 50.5))
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestReplicate:
    @pytest.fixture(scope="class")
    def replication(self):
        return replicate(quick_config(), seeds=(1, 2, 3))

    def test_one_result_per_seed(self, replication):
        assert replication.seeds == [1, 2, 3]

    def test_metric_extraction(self, replication):
        summary = replication.mean_latency("control")
        assert summary.n == 3
        assert summary.mean > 0
        assert all(v > 0 for v in summary.values)

    def test_seeds_actually_vary(self, replication):
        summary = replication.mean_latency("control")
        assert summary.std > 0

    def test_throughput_metric(self, replication):
        summary = replication.throughput("control")
        # 16 hosts x 0.5 load x 0.25 share, modest CI
        assert summary.mean == pytest.approx(2.0, rel=0.3)

    def test_run_one_respects_seed(self):
        config = quick_config()
        a = run_one(config, 7)
        b = run_one(config, 7)
        assert (
            a.collector.get("control").packet_latency.mean
            == b.collector.get("control").packet_latency.mean
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(quick_config(), seeds=())
        with pytest.raises(ValueError):
            replicate(quick_config(), seeds=(1, 1))


class TestExport:
    @pytest.fixture(scope="class")
    def series(self):
        return FigureSeries(
            figure="Fig X",
            headers=["arch", "load", "lat"],
            rows=[["ideal", 0.5, 1.25], ["simple", 0.5, 1.5]],
            cdfs={"ideal": [(1.0, 0.5), (2.0, 1.0)]},
            notes=["a note"],
        )

    def test_csv(self, series):
        text = figure_to_csv(series)
        lines = text.strip().splitlines()
        assert lines[0] == "arch,load,lat"
        assert lines[1] == "ideal,0.5,1.25"

    def test_json(self, series):
        doc = json.loads(figure_to_json(series))
        assert doc["figure"] == "Fig X"
        assert doc["rows"][1][0] == "simple"
        assert doc["cdfs"]["ideal"][0] == {"x": 1.0, "p": 0.5}
        assert doc["notes"] == ["a note"]

    def test_write_infers_format(self, series, tmp_path):
        csv_path = write_figure(series, tmp_path / "fig.csv")
        json_path = write_figure(series, tmp_path / "fig.json")
        assert csv_path.read_text().startswith("arch,load,lat")
        assert json.loads(json_path.read_text())["figure"] == "Fig X"

    def test_write_rejects_unknown_format(self, series, tmp_path):
        with pytest.raises(ValueError):
            write_figure(series, tmp_path / "fig.xlsx")

    def test_result_to_json(self):
        result = run_one(quick_config(), 1)
        doc = json.loads(result_to_json(result))
        assert doc["architecture"] == "advanced-2vc"
        assert doc["load"] == 0.5
        assert "control" in doc["classes"]
        control = doc["classes"]["control"]
        assert control["packets"] > 0
        assert control["message_latency_ns"]["p99"] >= control["message_latency_ns"]["p50"]
