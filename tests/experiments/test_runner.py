"""Tests for the experiment runner (short windows, tiny topology)."""

import pytest

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.sim import units


def quick_config(**overrides):
    defaults = dict(
        architecture="advanced-2vc",
        load=0.5,
        seed=3,
        topology="tiny",
        warmup_ns=100 * units.US,
        measure_ns=300 * units.US,
        mix=scaled_video_mix(0.5, time_scale=0.02),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def result():
    return run_experiment(quick_config())


class TestRunExperiment:
    def test_all_classes_observed(self, result):
        assert {"control", "multimedia", "best-effort", "background"} <= set(
            result.collector.classes
        )

    def test_throughput_tracks_offered_at_half_load(self, result):
        for tclass in ("control", "multimedia"):
            assert result.normalized_throughput(tclass) == pytest.approx(1.0, abs=0.3)

    def test_latency_positive_and_bounded(self, result):
        control = result.collector.get("control")
        assert 0 < control.packet_latency.mean < 100 * units.US

    def test_summary_renders(self, result):
        text = result.summary()
        assert "Advanced 2 VCs" in text
        assert "control" in text

    def test_wall_time_and_events_recorded(self, result):
        assert result.events_executed > 0
        assert result.wall_seconds > 0

    def test_offered_uses_configured_rate(self, result):
        offered = result.offered("control")
        # 16 hosts x 0.5 load x 0.25 share x 1 B/ns
        assert offered == pytest.approx(16 * 0.5 * 0.25)


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_experiment(quick_config(measure_ns=150 * units.US))
        b = run_experiment(quick_config(measure_ns=150 * units.US))
        sa = a.collector.get("control")
        sb = b.collector.get("control")
        assert sa.packets == sb.packets
        assert sa.packet_latency.mean == sb.packet_latency.mean

    def test_back_to_back_runs_mint_identical_uids(self):
        # Regression: uid minting lives on the per-fabric PacketFactory,
        # so a second run in the same process replays the exact uid
        # stream (the old module-global counter kept counting across
        # runs, which broke uid-keyed trace comparison and would have
        # made pooled-packet reuse nondeterministic).
        def run_once():
            uids = []
            config = quick_config(measure_ns=120 * units.US)
            from repro.core.architectures import ARCHITECTURES
            from repro.experiments.presets import make_topology
            from repro.network.fabric import Fabric
            from repro.sim.rng import RandomStreams
            from repro.traffic.mix import build_mix

            fabric = Fabric(
                make_topology(config.topology),
                ARCHITECTURES[config.architecture],
                config.params,
                packet_pooling=True,
            )
            fabric.subscribe_delivery(lambda pkt, now: uids.append(pkt.uid))
            mix = build_mix(fabric, RandomStreams(config.seed), config.mix_config)
            mix.start()
            fabric.run(until=config.end_ns)
            mix.stop()
            return uids

        first = run_once()
        second = run_once()
        assert first, "run delivered no packets; config too short"
        assert first == second

    def test_different_seed_different_results(self):
        a = run_experiment(quick_config(measure_ns=150 * units.US, seed=1))
        b = run_experiment(quick_config(measure_ns=150 * units.US, seed=2))
        assert (
            a.collector.get("control").packet_latency.mean
            != b.collector.get("control").packet_latency.mean
        )
