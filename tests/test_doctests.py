"""Run the doctest examples embedded in module docstrings.

Several modules carry small usage examples in their docstrings
(``units``, ``eligible``, ``report``, ``rng``); keeping them executable
keeps the documentation honest.
"""

import doctest

import pytest

import repro.core.eligible
import repro.core.invariants
import repro.obs.telemetry
import repro.sim.rng
import repro.sim.units
import repro.stats.report
import repro.sim.monitor

MODULES = [
    repro.sim.units,
    repro.core.eligible,
    repro.core.invariants,
    repro.obs.telemetry,
    repro.stats.report,
    repro.sim.rng,
    repro.sim.monitor,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
