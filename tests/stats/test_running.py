"""Tests for the Welford accumulator."""

import math
import random
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.running import RunningStats


class TestBasics:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.variance == 0.0
        assert stats.min == math.inf

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.min == stats.max == 5.0

    def test_known_sequence(self):
        stats = RunningStats()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in values:
            stats.add(v)
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(2.0)  # population std
        assert stats.min == 2.0
        assert stats.max == 9.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_statistics_module(self, values):
        stats = RunningStats()
        for v in values:
            stats.add(v)
        assert stats.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert stats.variance == pytest.approx(
            statistics.pvariance(values), abs=1e-3, rel=1e-6
        )

    def test_numerical_stability_large_offset(self):
        """Welford stays accurate with a huge common offset (naive
        sum-of-squares would catastrophically cancel)."""
        stats = RunningStats()
        offset = 1e12
        for v in (offset + 1, offset + 2, offset + 3):
            stats.add(v)
        assert stats.variance == pytest.approx(2.0 / 3.0, rel=1e-6)


class TestMerge:
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, xs, ys):
        left, right, both = RunningStats(), RunningStats(), RunningStats()
        for x in xs:
            left.add(x)
            both.add(x)
        for y in ys:
            right.add(y)
            both.add(y)
        merged = left.merge(right)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, abs=1e-6, rel=1e-9)
        assert merged.variance == pytest.approx(both.variance, abs=1e-3, rel=1e-6)
        assert merged.min == both.min
        assert merged.max == both.max

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.add(1.0)
        merged = stats.merge(RunningStats())
        assert merged.count == 1
        assert merged.mean == 1.0

    def test_merge_two_empties(self):
        merged = RunningStats().merge(RunningStats())
        assert merged.count == 0
