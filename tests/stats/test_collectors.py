"""Tests for the per-class metrics collector."""

import pytest

from repro.stats.collectors import ClassStats, MetricsCollector
from tests.helpers import mkpkt


def delivered(deadline=0, *, tclass="control", birth=0, size=256, **kw):
    return mkpkt(deadline, tclass=tclass, birth=birth, size=size, **kw)


class TestClassStats:
    def test_packet_latency(self):
        stats = ClassStats("control")
        stats.record(delivered(birth=100), now=150)
        stats.record(delivered(birth=100), now=250)
        assert stats.packet_latency.count == 2
        assert stats.packet_latency.mean == pytest.approx(100.0)

    def test_single_packet_message_completes_immediately(self):
        stats = ClassStats("control")
        stats.record(delivered(birth=0), now=40)
        assert stats.messages == 1
        assert stats.message_latency.mean == 40

    def test_multi_packet_message_latency_is_last_packet(self):
        stats = ClassStats("multimedia")
        parts = [
            delivered(tclass="multimedia", birth=100, msg_id=7, msg_seq=i, msg_parts=3)
            for i in range(3)
        ]
        stats.record(parts[0], now=200)
        stats.record(parts[1], now=300)
        assert stats.messages == 0  # incomplete
        stats.record(parts[2], now=450)
        assert stats.messages == 1
        assert stats.message_latency.mean == 350  # 450 - 100

    def test_out_of_order_parts_still_complete(self):
        stats = ClassStats("multimedia")
        parts = [
            delivered(tclass="multimedia", birth=0, msg_id=1, msg_seq=i, msg_parts=2)
            for i in range(2)
        ]
        stats.record(parts[1], now=10)
        stats.record(parts[0], now=30)
        assert stats.messages == 1

    def test_jitter_is_consecutive_frame_latency_diffs(self):
        stats = ClassStats("multimedia")
        # Frame latencies 100, 140, 120 for flow 1 -> diffs 40, 20.
        for msg_id, (birth, arrive) in enumerate([(0, 100), (500, 640), (900, 1020)]):
            stats.record(
                delivered(tclass="multimedia", birth=birth, msg_id=msg_id, flow_id=1),
                now=arrive,
            )
        assert stats.jitter.count == 2
        assert stats.jitter.mean == pytest.approx(30.0)

    def test_jitter_tracked_per_flow(self):
        stats = ClassStats("x")
        stats.record(delivered(birth=0, msg_id=0, flow_id=1), now=100)
        stats.record(delivered(birth=0, msg_id=0, flow_id=2), now=900)
        # Different flows: no cross-flow jitter sample.
        assert stats.jitter.count == 0

    def test_forget_flow_drops_the_jitter_anchor(self):
        stats = ClassStats("x")
        stats.record(delivered(birth=0, msg_id=0, flow_id=1), now=100)
        stats.forget_flow(1)
        # The next frame of flow 1 has no anchor: no jitter sample.
        stats.record(delivered(birth=0, msg_id=1, flow_id=1), now=300)
        assert stats.jitter.count == 0
        stats.forget_flow(99)  # unknown flows are a no-op

    def test_throughput(self):
        stats = ClassStats("x")
        stats.record_throughput(delivered(size=1000))
        stats.record_throughput(delivered(size=500))
        assert stats.throughput_bytes_per_ns(3000) == pytest.approx(0.5)


class TestMetricsCollector:
    def test_classes_partitioned(self):
        collector = MetricsCollector()
        collector.on_delivery(delivered(tclass="control"), 10)
        collector.on_delivery(delivered(tclass="multimedia"), 10)
        assert set(collector.classes) == {"control", "multimedia"}

    def test_warmup_filters_latency_but_not_throughput(self):
        collector = MetricsCollector(warmup_ns=1000)
        collector.on_delivery(delivered(birth=999), 1500)  # born in warm-up
        collector.on_delivery(delivered(birth=1000), 1500)
        assert collector.dropped_warmup == 1
        stats = collector.get("control")
        assert stats.packet_latency.count == 1  # latency: post-warmup births
        assert stats.packets == 2  # throughput: all in-window deliveries

    def test_delivery_during_warmup_not_counted_for_throughput(self):
        collector = MetricsCollector(warmup_ns=1000)
        collector.on_delivery(delivered(birth=0, size=600), 500)
        collector.finalize(2000)
        assert collector.throughput("control") == 0.0

    def test_throughput_window(self):
        collector = MetricsCollector(warmup_ns=1000)
        collector.on_delivery(delivered(birth=1200, size=600), 1500)
        collector.finalize(4000)
        assert collector.window_ns == 3000
        assert collector.throughput("control") == pytest.approx(0.2)

    def test_throughput_before_finalize_raises(self):
        collector = MetricsCollector()
        collector.on_delivery(delivered(), 10)
        with pytest.raises(RuntimeError):
            collector.throughput("control")

    def test_unknown_class_throughput_is_zero(self):
        collector = MetricsCollector()
        collector.finalize(100)
        assert collector.throughput("nope") == 0.0

    def test_get_unknown_class_raises_with_known_list(self):
        collector = MetricsCollector()
        collector.on_delivery(delivered(tclass="control"), 10)
        with pytest.raises(KeyError, match="control"):
            collector.get("bogus")

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(warmup_ns=-1)
