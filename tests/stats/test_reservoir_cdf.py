"""Tests for reservoir sampling and the empirical CDF."""

import random

import pytest

from repro.stats.cdf import EmpiricalCDF
from repro.stats.reservoir import Reservoir


class TestReservoir:
    def test_exact_below_capacity(self):
        res = Reservoir(capacity=100)
        for i in range(50):
            res.add(float(i))
        assert res.is_exact
        assert sorted(res.items) == [float(i) for i in range(50)]

    def test_capacity_bounded(self):
        res = Reservoir(capacity=10)
        for i in range(1000):
            res.add(float(i))
        assert len(res) == 10
        assert res.seen == 1000
        assert not res.is_exact

    def test_uniformity(self):
        """Each stream element should survive with probability ~k/n."""
        hits = [0] * 100
        for trial in range(400):
            res = Reservoir(capacity=20, seed=trial)
            for i in range(100):
                res.add(float(i))
            for kept in res.items:
                hits[int(kept)] += 1
        expected = 400 * 20 / 100  # 80 per element
        assert all(expected * 0.5 < h < expected * 1.5 for h in hits), hits

    def test_sampling_does_not_touch_global_random(self):
        random.seed(42)
        before = random.random()
        random.seed(42)
        res = Reservoir(capacity=2)
        for i in range(100):
            res.add(float(i))
        after = random.random()
        assert before == after

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


class TestEmpiricalCDF:
    def test_prob_leq(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.prob_leq(0.5) == 0.0
        assert cdf.prob_leq(1.0) == 0.25
        assert cdf.prob_leq(2.5) == 0.5
        assert cdf.prob_leq(4.0) == 1.0

    def test_quantiles_nearest_rank(self):
        cdf = EmpiricalCDF(range(1, 101))  # 1..100
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(0.99) == 99
        assert cdf.quantile(1.0) == 100

    def test_min_max(self):
        cdf = EmpiricalCDF([5.0, 1.0, 9.0])
        assert cdf.min == 1.0
        assert cdf.max == 9.0

    def test_unsorted_input_accepted(self):
        cdf = EmpiricalCDF([3.0, 1.0, 2.0])
        assert cdf.values == [1.0, 2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_bad_quantile(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_curve_monotone_and_spans(self):
        cdf = EmpiricalCDF(range(1000))
        curve = cdf.curve(points=50)
        assert len(curve) == 50
        xs = [x for x, _ in curve]
        ps = [p for _, p in curve]
        assert xs == sorted(xs)
        assert ps == sorted(ps)
        assert curve[0][0] == 0
        assert curve[-1] == (999, 1.0)

    def test_curve_needs_two_points(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).curve(points=1)

    def test_single_sample(self):
        cdf = EmpiricalCDF([7.0])
        assert cdf.quantile(0.5) == 7.0
        assert cdf.prob_leq(7.0) == 1.0
