"""Tests for table formatting."""

from repro.stats.report import format_table


class TestFormatTable:
    def test_headers_and_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("a")
        assert lines[3].startswith("bb")

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_numbers_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.6], [0.0000123]])
        assert "0.123" in text
        assert "1.23e" in text.replace("+0", "").replace("+", "")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # header + rule only

    def test_wide_cells_stretch_columns(self):
        text = format_table(["x"], [["averyverylongcellvalue"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("averyverylongcellvalue")
