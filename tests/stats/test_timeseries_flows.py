"""Tests for the time-series and per-flow collectors."""

import pytest

from repro.stats.flows import PerFlowCollector
from repro.stats.timeseries import DeliveryTimeSeries
from tests.helpers import mkpkt


def delivered(tclass="control", *, birth=0, size=100, flow_id=1, src=0, dst=1):
    return mkpkt(0, tclass=tclass, birth=birth, size=size, flow_id=flow_id, src=src, dst=dst)


class TestDeliveryTimeSeries:
    def test_bucketing(self):
        series = DeliveryTimeSeries(bucket_ns=1000)
        series.on_delivery(delivered(size=100), 50)
        series.on_delivery(delivered(size=200), 999)
        series.on_delivery(delivered(size=400), 1000)
        curve = series.throughput_curve("control")
        assert curve == [(0, 0.3), (1000, 0.4)]

    def test_gap_filling(self):
        series = DeliveryTimeSeries(bucket_ns=100)
        series.on_delivery(delivered(size=100), 0)
        series.on_delivery(delivered(size=100), 350)
        curve = series.throughput_curve("control")
        assert [v for _, v in curve] == [1.0, 0.0, 0.0, 1.0]

    def test_latency_curve(self):
        series = DeliveryTimeSeries(bucket_ns=1000)
        series.on_delivery(delivered(birth=0), 100)
        series.on_delivery(delivered(birth=0), 300)
        assert series.latency_curve("control") == [(0, 200.0)]

    def test_class_filter(self):
        series = DeliveryTimeSeries(bucket_ns=100, classes=("multimedia",))
        series.on_delivery(delivered(tclass="control"), 10)
        series.on_delivery(delivered(tclass="multimedia"), 10)
        assert series.classes() == ["multimedia"]

    def test_empty_class(self):
        series = DeliveryTimeSeries(bucket_ns=100)
        assert series.throughput_curve("nothing") == []

    def test_steady_state_detector(self):
        series = DeliveryTimeSeries(bucket_ns=100)
        # ramp: 1 packet, then 4, then steady 10 per bucket
        deliveries = [1, 4, 10, 10, 10, 10]
        t = 0
        for count in deliveries:
            for _ in range(count):
                series.on_delivery(delivered(size=10), t)
            t += 100
        start = series.steady_state_start("control", tolerance=0.1)
        assert start == 200  # the first all-steady bucket

    def test_steady_state_none_for_short_series(self):
        series = DeliveryTimeSeries(bucket_ns=100)
        series.on_delivery(delivered(), 0)
        assert series.steady_state_start("control") is None

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            DeliveryTimeSeries(bucket_ns=0)


class TestPerFlowCollector:
    def test_per_flow_partitioning(self):
        collector = PerFlowCollector()
        collector.on_delivery(delivered(flow_id=1, size=100), 10)
        collector.on_delivery(delivered(flow_id=2, size=200), 10)
        collector.on_delivery(delivered(flow_id=1, size=300), 20)
        assert len(collector) == 2
        assert collector.get(1).bytes == 400
        assert collector.get(2).packets == 1

    def test_latency_per_flow(self):
        collector = PerFlowCollector()
        collector.on_delivery(delivered(flow_id=1, birth=0), 100)
        collector.on_delivery(delivered(flow_id=1, birth=0), 300)
        assert collector.get(1).latency.mean == 200

    def test_warmup_filter(self):
        collector = PerFlowCollector(warmup_ns=1000)
        collector.on_delivery(delivered(birth=500), 1500)
        assert len(collector) == 0

    def test_by_class(self):
        collector = PerFlowCollector()
        collector.on_delivery(delivered(flow_id=1, tclass="a"), 10)
        collector.on_delivery(delivered(flow_id=2, tclass="b"), 10)
        assert [f.flow_id for f in collector.by_class("a")] == [1]

    def test_worst_by_latency(self):
        collector = PerFlowCollector()
        collector.on_delivery(delivered(flow_id=1, birth=0), 100)
        collector.on_delivery(delivered(flow_id=2, birth=0), 900)
        collector.on_delivery(delivered(flow_id=3, birth=0), 500)
        worst = collector.worst_by_latency(2)
        assert [f.flow_id for f in worst] == [2, 3]

    def test_throughput_spread(self):
        collector = PerFlowCollector()
        collector.on_delivery(delivered(flow_id=1, size=1000), 10)
        collector.on_delivery(delivered(flow_id=2, size=3000), 10)
        lo, mean, hi = collector.throughput_spread("control", window_ns=1000)
        assert (lo, mean, hi) == (1.0, 2.0, 3.0)

    def test_throughput_spread_empty(self):
        collector = PerFlowCollector()
        assert collector.throughput_spread("x", 100) == (0.0, 0.0, 0.0)

    def test_delivery_window_tracking(self):
        collector = PerFlowCollector()
        collector.on_delivery(delivered(flow_id=1), 100)
        collector.on_delivery(delivered(flow_id=1), 900)
        stats = collector.get(1)
        assert stats.first_delivery_ns == 100
        assert stats.last_delivery_ns == 900
