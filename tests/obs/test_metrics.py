"""Unit tests for the metric primitives and registry."""

import pytest

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullMetrics,
    SLACK_BUCKETS_NS,
    WAIT_BUCKETS_NS,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("a.b.c_total")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_delta_rejected(self):
        c = Counter("a.b.c_total")
        with pytest.raises(MetricError):
            c.inc(-1)
        assert c.value == 0  # failed inc must not corrupt the count

    def test_zero_delta_is_allowed(self):
        c = Counter("a.b.c_total")
        c.inc(0)
        assert c.value == 0

    def test_to_dict(self):
        c = Counter("a.b.c_total", unit="packets")
        c.inc(3)
        assert c.to_dict() == {"type": "counter", "unit": "packets", "value": 3}


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("a.b.c_ratio")
        assert g.value == 0.0
        g.set(1.5)
        g.set(-2.0)  # gauges, unlike counters, may go down
        assert g.value == -2.0

    def test_to_dict(self):
        g = Gauge("a.b.c_ratio", unit="ratio")
        g.set(0.25)
        assert g.to_dict() == {"type": "gauge", "unit": "ratio", "value": 0.25}


class TestHistogram:
    def test_edges_must_be_nonempty_and_strictly_increasing(self):
        with pytest.raises(MetricError):
            Histogram("a.b.c_ns", bounds=())
        with pytest.raises(MetricError):
            Histogram("a.b.c_ns", bounds=(1, 1, 2))
        with pytest.raises(MetricError):
            Histogram("a.b.c_ns", bounds=(2, 1))

    def test_bucket_boundaries_are_inclusive_upper(self):
        h = Histogram("a.b.c_ns", bounds=(0, 10, 100))
        # bucket i holds bounds[i-1] < v <= bounds[i]; last is overflow.
        h.observe(-5)  # <= 0
        h.observe(0)  # exactly on the first edge -> first bucket
        h.observe(1)  # (0, 10]
        h.observe(10)  # exactly on an edge -> that bucket, not the next
        h.observe(11)  # (10, 100]
        h.observe(100)
        h.observe(101)  # overflow
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7

    def test_min_max_mean_total(self):
        h = Histogram("a.b.c_ns", bounds=(10,))
        assert h.min is None and h.max is None and h.mean == 0.0
        for v in (5, -3, 12):
            h.observe(v)
        assert (h.min, h.max, h.total) == (-3, 12, 14)
        assert h.mean == pytest.approx(14 / 3)

    def test_merge(self):
        a = Histogram("a.b.left_ns", bounds=(0, 10))
        b = Histogram("a.b.right_ns", bounds=(0, 10))
        a.observe(5)
        b.observe(-1)
        b.observe(50)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert (a.min, a.max, a.total) == (-1, 50, 54)

    def test_merge_into_empty_adopts_min_max(self):
        a = Histogram("a.b.left_ns", bounds=(0,))
        b = Histogram("a.b.right_ns", bounds=(0,))
        b.observe(7)
        a.merge(b)
        assert (a.min, a.max, a.count) == (7, 7, 1)

    def test_merge_requires_identical_edges(self):
        a = Histogram("a.b.left_ns", bounds=(0, 10))
        b = Histogram("a.b.right_ns", bounds=(0, 20))
        with pytest.raises(MetricError):
            a.merge(b)

    def test_to_dict_shape(self):
        h = Histogram("a.b.c_ns", bounds=(0, 10), unit="ns")
        h.observe(3)
        doc = h.to_dict()
        assert doc == {
            "type": "histogram",
            "unit": "ns",
            "bounds": [0, 10],
            "counts": [0, 1, 0],
            "count": 1,
            "sum": 3,
            "min": 3,
            "max": 3,
        }


class TestNameValidation:
    @pytest.mark.parametrize(
        "bad",
        ["", " a.b.c", "a.b.c ", "two.segments", "a..c", "a.b.c$", "a.b c.d"],
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(MetricError):
            MetricsRegistry().counter(bad)

    def test_good_names_accepted(self):
        reg = MetricsRegistry()
        reg.counter("network.switch.vc0.enqueue_packets_total")
        reg.gauge("sim.engine.heap_depth_events")
        reg.histogram("network.host.delivery_slack_ns", bounds=SLACK_BUCKETS_NS)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("a.b.c_total")
        b = reg.counter("a.b.c_total")
        assert a is b
        a.inc()
        assert reg.counter("a.b.c_total").value == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b.c_total")
        with pytest.raises(MetricError):
            reg.gauge("a.b.c_total")
        with pytest.raises(MetricError):
            reg.histogram("a.b.c_total", bounds=(0,))

    def test_histogram_edge_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("a.b.c_ns", bounds=(0, 10))
        reg.histogram("a.b.c_ns", bounds=(0, 10))  # same edges: fine
        with pytest.raises(MetricError):
            reg.histogram("a.b.c_ns", bounds=(0, 20))

    def test_container_protocol(self):
        reg = MetricsRegistry()
        assert len(reg) == 0 and "a.b.c_total" not in reg
        reg.counter("a.b.c_total")
        assert len(reg) == 1 and "a.b.c_total" in reg
        assert reg.names() == ["a.b.c_total"]
        assert reg.get("a.b.c_total").value == 0
        with pytest.raises(KeyError):
            reg.get("missing.metric.name")

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.z.z_total").inc(2)
        reg.gauge("a.a.a_ratio").set(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a.a.a_ratio", "z.z.z_total"]
        assert snap["z.z.z_total"]["value"] == 2


class TestNullMetrics:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_instruments_are_shared_inert_singletons(self):
        a = NULL_METRICS.counter("a.b.c_total")
        b = NULL_METRICS.counter("x.y.z_total")
        assert a is b  # one singleton per kind, no per-name allocation
        a.inc(100)
        assert a.value == 0
        g = NULL_METRICS.gauge("a.b.c_ratio")
        g.set(5.0)
        assert g.value == 0.0
        h = NULL_METRICS.histogram("a.b.c_ns", bounds=(0, 10))
        h.observe(3)
        assert h.count == 0

    def test_snapshot_empty(self):
        assert NULL_METRICS.snapshot() == {}
        assert NullMetrics().snapshot() == {}


class TestBucketConstants:
    @pytest.mark.parametrize(
        "bounds", [SLACK_BUCKETS_NS, DEPTH_BUCKETS, WAIT_BUCKETS_NS]
    )
    def test_shared_bucket_edges_are_valid(self, bounds):
        h = Histogram("a.b.c_x", bounds=bounds)
        assert len(h.counts) == len(bounds) + 1
