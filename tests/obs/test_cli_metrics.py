"""End-to-end CLI tests for ``run --metrics-out/--trace-out`` and the
``metrics`` subcommand (print / diff / schema-validate exit codes)."""

import json
from pathlib import Path

from repro.cli import main
from repro.obs.snapshot import SCHEMA_VERSION

FAST = ["--topology", "tiny", "--warmup-us", "50", "--measure-us", "120"]
SCHEMA = str(Path(__file__).resolve().parents[2] / "docs" / "metrics_schema.json")


def _run_with_snapshot(tmp_path, name="snap.json", extra=()):
    out = tmp_path / name
    rc = main(
        [
            "run",
            "--arch",
            "advanced-2vc",
            "--load",
            "1.0",
            *FAST,
            "--metrics-out",
            str(out),
            "--heartbeat-us",
            "50",
            *extra,
        ]
    )
    assert rc == 0
    return out


class TestRunExport:
    def test_metrics_out_is_schema_valid(self, tmp_path, capsys):
        out = _run_with_snapshot(tmp_path)
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["engine"]["events_executed"] > 0
        assert doc["run"]["architecture"] == "advanced-2vc"
        assert len(doc["timeseries"]["samples"]) > 0
        # the paper-relevant instruments are live under load
        assert doc["metrics"]["core.takeover.hits_total"]["value"] > 0
        assert doc["metrics"]["network.host.vc0.delivery_slack_ns"]["count"] > 0
        assert main(["metrics", str(out), "--schema", SCHEMA]) == 0

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        _run_with_snapshot(
            tmp_path,
            extra=["--trace-out", str(trace_path), "--trace-capacity", "500"],
        )
        capsys.readouterr()
        lines = trace_path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "trace-summary"
        assert header["policy"] == "ring-keep-newest"
        assert header["retained"] == 500 and len(lines) == 501
        record = json.loads(lines[1])
        assert set(record) == {"t_ns", "topic", "payload"}


class TestMetricsCommand:
    def test_pretty_print(self, tmp_path, capsys):
        out = _run_with_snapshot(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "counters:" in printed and "histograms:" in printed
        assert "core.takeover.hits_total" in printed

    def test_diff_two_snapshots(self, tmp_path, capsys):
        a = _run_with_snapshot(tmp_path, "a.json")
        b = _run_with_snapshot(tmp_path, "b.json", extra=["--seed", "2"])
        capsys.readouterr()
        assert main(["metrics", str(a), str(b)]) == 0
        printed = capsys.readouterr().out
        assert "->" in printed  # different seeds disagree somewhere

    def test_diff_identical_snapshots(self, tmp_path, capsys):
        a = _run_with_snapshot(tmp_path, "a.json")
        capsys.readouterr()
        assert main(["metrics", str(a), str(a)]) == 0
        assert "snapshots are identical" in capsys.readouterr().out

    def test_three_files_usage_error(self, tmp_path, capsys):
        assert main(["metrics", "x.json", "y.json", "z.json"]) == 2

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 2

    def test_non_snapshot_json_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text("{}", encoding="utf-8")
        assert main(["metrics", str(path)]) == 2

    def test_schema_violation_is_exit_1(self, tmp_path, capsys):
        out = _run_with_snapshot(tmp_path)
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        doc["schema_version"] = "one"
        out.write_text(json.dumps(doc), encoding="utf-8")
        assert main(["metrics", str(out), "--schema", SCHEMA]) == 1
        assert "expected type integer" in capsys.readouterr().err

    def test_unreadable_schema_is_exit_2(self, tmp_path, capsys):
        out = _run_with_snapshot(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(out), "--schema", str(tmp_path / "no.json")]) == 2
