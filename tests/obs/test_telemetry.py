"""RunTelemetry heartbeat sampling, GaugeTimeSeries, and counter syncing."""

import io

import pytest

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.telemetry import RunTelemetry, sync_component_totals
from repro.sim import units
from repro.sim.engine import Engine
from repro.stats.timeseries import GaugeTimeSeries

FAST = dict(
    architecture="advanced-2vc",
    load=1.0,
    topology="tiny",
    warmup_ns=50 * units.US,
    measure_ns=150 * units.US,
    mix=scaled_video_mix(1.0, 0.02),
)


class TestGaugeTimeSeries:
    def test_append_copies_the_row(self):
        ts = GaugeTimeSeries()
        row = {"a.b.c_x": 1.0}
        ts.append(10, row)
        row["a.b.c_x"] = 99.0
        assert ts.series("a.b.c_x") == [(10, 1.0)]

    def test_names_series_latest(self):
        ts = GaugeTimeSeries()
        ts.append(10, {"b.b.b_x": 1.0})
        ts.append(20, {"a.a.a_x": 2.0, "b.b.b_x": 3.0})
        assert ts.names() == ["a.a.a_x", "b.b.b_x"]
        assert ts.series("b.b.b_x") == [(10, 1.0), (20, 3.0)]
        assert ts.latest("a.a.a_x") == 2.0
        assert ts.latest("missing.gauge.name") is None
        assert len(ts) == 2

    def test_to_dict_sorts_value_keys(self):
        ts = GaugeTimeSeries()
        ts.append(5, {"z.z.z_x": 1.0, "a.a.a_x": 2.0})
        doc = ts.to_dict()
        assert doc == {
            "samples": [{"t_ns": 5, "values": {"a.a.a_x": 2.0, "z.z.z_x": 1.0}}],
            "capacity": None,
            "dropped": 0,
        }
        assert list(doc["samples"][0]["values"]) == ["a.a.a_x", "z.z.z_x"]

    def test_capacity_keeps_newest_and_counts_drops(self):
        ts = GaugeTimeSeries(capacity=3)
        for t in range(5):
            ts.append(t * 10, {"g.g.g_x": float(t)})
        assert len(ts) == 3
        assert [t for t, _ in ts.samples] == [20, 30, 40]
        assert ts.dropped == 2
        doc = ts.to_dict()
        assert doc["capacity"] == 3
        assert doc["dropped"] == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            GaugeTimeSeries(capacity=0)


class TestRunTelemetry:
    def test_heartbeat_tick_count_and_timestamps(self):
        eng = Engine()
        tel = RunTelemetry(eng, heartbeat_ns=1000)
        tel.start(until_ns=3500)
        eng.run(until=3500)
        assert tel.ticks == 3
        assert [t for t, _ in tel.timeseries.samples] == [1000, 2000, 3000]

    def test_rejects_nonpositive_heartbeat(self):
        with pytest.raises(ValueError):
            RunTelemetry(Engine(), heartbeat_ns=0)

    def test_samplers_and_events_per_sec_recorded(self):
        eng = Engine()
        tel = RunTelemetry(eng, heartbeat_ns=100)
        tel.add_sampler("sim.engine.heap_depth_events", lambda: eng.pending)
        for t in range(0, 500, 10):
            eng.at(t, lambda: None)
        tel.start(until_ns=500)
        eng.run(until=500)
        names = tel.timeseries.names()
        assert "sim.engine.events_per_sec" in names
        assert "sim.engine.heap_depth_events" in names
        # engine executes events *during* the run, so mid-run sampling
        # must see a moving count (the live-counter regression test).
        eps = [v for _, v in tel.timeseries.series("sim.engine.events_per_sec")]
        assert any(v > 0 for v in eps)

    def test_values_mirrored_into_registry_gauges(self):
        eng = Engine()
        reg = MetricsRegistry()
        tel = RunTelemetry(eng, heartbeat_ns=100, metrics=reg)
        tel.add_sampler("sim.engine.heap_depth_events", lambda: eng.pending)
        tel.start(until_ns=200)
        eng.run(until=200)
        assert reg.gauge("sim.engine.heap_depth_events").value == tel.timeseries.latest(
            "sim.engine.heap_depth_events"
        )

    def test_on_tick_hooks_run_every_heartbeat(self):
        eng = Engine()
        tel = RunTelemetry(eng, heartbeat_ns=100)
        calls = []
        tel.on_tick(lambda: calls.append(eng.now))
        tel.start(until_ns=300)
        eng.run(until=300)
        assert calls == [100, 200, 300]

    def test_live_progress_writes_status_line(self):
        eng = Engine()
        stream = io.StringIO()
        tel = RunTelemetry(eng, heartbeat_ns=100, live=True, stream=stream)
        tel.start(until_ns=200)
        eng.run(until=200)
        out = stream.getvalue()
        assert "[telemetry]" in out and "ev/s" in out
        assert out.endswith("\n")  # live mode closes the status line

    def test_telemetry_does_not_change_results(self):
        plain = run_experiment(ExperimentConfig(**FAST))
        observed = run_experiment(
            ExperimentConfig(**FAST),
            metrics=MetricsRegistry(),
            heartbeat_ns=25 * units.US,
        )
        assert observed.telemetry is not None and observed.telemetry.ticks > 0
        for tclass in ("control", "best-effort"):
            assert observed.mean_packet_latency(tclass) == plain.mean_packet_latency(tclass)
        assert observed.collector.classes.keys() == plain.collector.classes.keys()


class TestSyncComponentTotals:
    def test_sync_is_idempotent_per_total(self):
        result = run_experiment(ExperimentConfig(**FAST), metrics=MetricsRegistry())
        reg = result.metrics
        events = reg.counter("sim.engine.events_total").value
        assert events == result.events_executed > 0
        # runner already synced once; syncing again must not double count
        sync_component_totals(result.fabric.engine, result.fabric, reg)
        assert reg.counter("sim.engine.events_total").value == events

    def test_sync_noop_when_disabled(self):
        result = run_experiment(ExperimentConfig(**FAST))
        sync_component_totals(result.fabric.engine, result.fabric, NULL_METRICS)
        assert NULL_METRICS.snapshot() == {}

    def test_takeover_hits_counted_under_load(self):
        result = run_experiment(ExperimentConfig(**FAST), metrics=MetricsRegistry())
        assert result.metrics.counter("core.takeover.hits_total").value > 0
        assert result.metrics.counter("network.link.busy_ns_total").value > 0
