"""Snapshot document assembly, export, diffing, and the schema checker."""

import io
import json
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate
from repro.obs.snapshot import (
    SCHEMA_VERSION,
    diff_snapshots,
    dump_snapshot,
    format_diff,
    format_snapshot,
    load_snapshot,
    run_snapshot,
    write_trace_jsonl,
)
from repro.sim.engine import Engine
from repro.sim.monitor import Trace


_SCHEMA_PATH = Path(__file__).resolve().parents[2] / "docs" / "metrics_schema.json"


def _registry():
    reg = MetricsRegistry()
    reg.counter("a.b.hits_total", unit="packets").inc(3)
    reg.gauge("a.b.depth_events").set(7)
    h = reg.histogram("a.b.wait_ns", bounds=(0, 10), unit="ns")
    h.observe(5)
    return reg


class TestRunSnapshot:
    def test_minimal_document(self):
        doc = run_snapshot(_registry())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["run"] == {}
        assert set(doc["metrics"]) == {"a.b.hits_total", "a.b.depth_events", "a.b.wait_ns"}
        assert "engine" not in doc and "trace" not in doc

    def test_engine_block(self):
        eng = Engine()
        eng.at(5, lambda: None)
        handle = eng.at_cancellable(6, lambda: None)
        handle.cancel()
        eng.run(until=10)
        doc = run_snapshot(_registry(), engine=eng)
        assert doc["engine"] == {
            "now_ns": 10,
            "events_executed": 1,
            "pending_events": 0,
            "tombstones_discarded": 1,
            "tombstone_ratio": 0.5,
        }

    def test_trace_block_only_when_enabled(self):
        trace = Trace(capacity=4, ring=True)
        trace.record(1, "a")
        doc = run_snapshot(_registry(), trace=trace, run_info={"seed": 3})
        assert doc["trace"]["retained"] == 1
        assert doc["run"] == {"seed": 3}

    def test_dump_load_roundtrip(self, tmp_path):
        doc = run_snapshot(_registry(), run_info={"seed": 1})
        path = tmp_path / "snap.json"
        with open(path, "w", encoding="utf-8") as fp:
            dump_snapshot(doc, fp)
        assert load_snapshot(str(path)) == doc
        # byte stability: identical documents serialize identically
        second = io.StringIO()
        dump_snapshot(run_snapshot(_registry(), run_info={"seed": 1}), second)
        assert second.getvalue() == path.read_text(encoding="utf-8")

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"not": "a snapshot"}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_snapshot(str(path))


class TestTraceJsonl:
    def test_header_plus_records(self):
        trace = Trace()
        trace.record(10, "switch.forward", "pkt", 3)
        trace.record(20, "link.busy", object())  # non-JSON payload -> repr
        out = io.StringIO()
        assert write_trace_jsonl(trace, out) == 2
        lines = out.getvalue().splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header["type"] == "trace-summary" and header["retained"] == 2
        rec = json.loads(lines[1])
        assert rec == {"t_ns": 10, "topic": "switch.forward", "payload": ["pkt", 3]}
        json.loads(lines[2])  # repr fallback still yields valid JSON


class TestFormatting:
    def test_format_snapshot_sections(self):
        eng = Engine()
        eng.at(0, lambda: None)
        eng.run_all()
        text = format_snapshot(run_snapshot(_registry(), engine=eng, run_info={"seed": 1}))
        assert "run:" in text and "engine:" in text
        assert "counters:" in text and "gauges:" in text and "histograms:" in text
        assert "a.b.hits_total" in text
        assert "<=10:1" in text  # histogram bucket rendering

    def test_diff_snapshots(self):
        reg_b = _registry()
        reg_b.counter("a.b.hits_total").inc(2)
        reg_b.histogram("a.b.wait_ns", bounds=(0, 10)).observe(99)
        reg_b.counter("a.b.extra_total")
        doc_a, doc_b = run_snapshot(_registry()), run_snapshot(reg_b)
        diff = diff_snapshots(doc_a, doc_b)
        assert diff["only_a"] == [] and diff["only_b"] == ["a.b.extra_total"]
        assert diff["changed"]["a.b.hits_total"]["delta"] == 2
        assert diff["changed"]["a.b.wait_ns"]["count"] == [1, 2]
        text = format_diff(diff, label_a="A", label_b="B")
        assert "+ a.b.extra_total" in text and "(+2)" in text

    def test_diff_identical(self):
        doc = run_snapshot(_registry())
        diff = diff_snapshots(doc, doc)
        assert diff == {"only_a": [], "only_b": [], "changed": {}}
        assert format_diff(diff) == "snapshots are identical"


def _traced_registry(misses=2):
    """A registry plus a tracer that retained ``misses`` miss traces,
    with the per-class retained counters minted into the registry."""
    from repro.obs.tracing import PacketTracer
    from tests.helpers import mkpkt

    class _Link:
        def occupancy_ns(self, size_bytes):
            return size_bytes

    reg = _registry()
    tracer = PacketTracer(policy="tail", capacity=8, seed=3, metrics=reg)
    for _ in range(misses):
        pkt = mkpkt(5, size=10, tclass="video")
        tracer.begin(pkt, 0, "h0")
        tracer.event(pkt, "inject", 1)
        tracer.finish(pkt, 100, node="h1", link=_Link(), slack_ns=-95)
    return reg, tracer


class TestSpansSection:
    """Schema v2: the optional ``spans`` block from a PacketTracer."""

    def test_present_only_when_tracing(self):
        reg, tracer = _traced_registry()
        doc = run_snapshot(reg, tracer=tracer)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["spans"] == tracer.snapshot()
        assert doc["spans"]["retained"] == 2
        assert "spans" not in run_snapshot(_registry())
        # a disabled tracer contributes nothing either
        from repro.obs.tracing import NULL_TRACER

        assert "spans" not in run_snapshot(_registry(), tracer=NULL_TRACER)

    def test_roundtrip_preserves_spans(self, tmp_path):
        reg, tracer = _traced_registry()
        doc = run_snapshot(reg, tracer=tracer, run_info={"seed": 3})
        path = tmp_path / "snap.json"
        with open(path, "w", encoding="utf-8") as fp:
            dump_snapshot(doc, fp)
        assert load_snapshot(str(path))["spans"] == tracer.snapshot()

    def test_format_snapshot_spans_line(self):
        reg, tracer = _traced_registry()
        text = format_snapshot(run_snapshot(reg, tracer=tracer))
        assert "spans: 2 sampled, 2 retained, 0 dropped (tail-deadline-miss)" in text

    def test_diff_sees_tracer_minted_counters(self):
        reg_a, tracer_a = _traced_registry(misses=1)
        reg_b, tracer_b = _traced_registry(misses=3)
        diff = diff_snapshots(
            run_snapshot(reg_a, tracer=tracer_a),
            run_snapshot(reg_b, tracer=tracer_b),
        )
        change = diff["changed"]["obs.tracing.class.video.retained_total"]
        assert change["delta"] == 2

    def test_spans_block_is_schema_valid(self):
        schema = json.loads(_SCHEMA_PATH.read_text(encoding="utf-8"))
        reg, tracer = _traced_registry()
        doc = json.loads(json.dumps(run_snapshot(reg, tracer=tracer)))
        assert validate(doc, schema) == []

    def test_schema_catches_spans_corruption(self):
        schema = json.loads(_SCHEMA_PATH.read_text(encoding="utf-8"))
        reg, tracer = _traced_registry()
        doc = json.loads(json.dumps(run_snapshot(reg, tracer=tracer)))
        doc["spans"]["policy"] = "coin-flip"
        doc["spans"]["dropped"] = -1
        doc["spans"]["rate"] = 2.0
        doc["spans"]["bogus"] = True
        errors = validate(doc, schema)
        assert len(errors) == 4


class TestSchemaValidator:
    def test_type_checks(self):
        assert validate(3, {"type": "integer"}) == []
        assert validate(True, {"type": "integer"}) != []  # bool is not an int here
        assert validate(3.5, {"type": "number"}) == []
        assert validate(3, {"type": ["integer", "null"]}) == []
        assert validate(None, {"type": ["integer", "null"]}) == []
        assert validate("x", {"type": "integer"}) != []

    def test_enum_and_minimum(self):
        assert validate("counter", {"enum": ["counter", "gauge"]}) == []
        assert validate("ring", {"enum": ["counter", "gauge"]}) != []
        assert validate(-1, {"type": "integer", "minimum": 0}) != []

    def test_object_rules(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        assert validate({"a": 1}, schema) == []
        assert any("missing required" in e for e in validate({}, schema))
        assert any("unexpected property" in e for e in validate({"a": 1, "b": 2}, schema))

    def test_additional_properties_schema(self):
        schema = {"type": "object", "additionalProperties": {"type": "number"}}
        assert validate({"x": 1.5}, schema) == []
        assert validate({"x": "no"}, schema) != []

    def test_array_items_with_paths(self):
        errors = validate([1, "two"], {"type": "array", "items": {"type": "integer"}})
        assert len(errors) == 1 and "[1]" in errors[0]

    def test_real_snapshot_against_checked_in_schema(self):
        schema = json.loads(_SCHEMA_PATH.read_text(encoding="utf-8"))
        eng = Engine()
        eng.at(0, lambda: None)
        eng.run_all()
        trace = Trace(capacity=2, ring=True)
        trace.record(0, "a")
        doc = run_snapshot(_registry(), engine=eng, trace=trace, run_info={"seed": 1})
        doc = json.loads(json.dumps(doc))  # what CI actually validates
        assert validate(doc, schema) == []

    def test_schema_catches_corruption(self):
        schema = json.loads(_SCHEMA_PATH.read_text(encoding="utf-8"))
        doc = json.loads(json.dumps(run_snapshot(_registry())))
        doc["metrics"]["a.b.hits_total"]["type"] = "bogus"
        doc["schema_version"] = 99
        errors = validate(doc, schema)
        assert len(errors) == 2
