"""Trace buffer behaviour: topics, subscribers, and the two drop policies."""

import pytest

from repro.sim.monitor import NullTrace, Trace, TraceRecord


class TestTopicsAndSubscribers:
    def test_topic_filtering(self):
        t = Trace(topics={"switch.forward"})
        t.record(1, "switch.forward", "p1")
        t.record(2, "link.busy", "ignored")
        assert [r.topic for r in t.records] == ["switch.forward"]

    def test_unfiltered_records_everything(self):
        t = Trace()
        t.record(1, "a", 1)
        t.record(2, "b", 2)
        assert len(t.records) == 2

    def test_subscribe_delivers_matching_records(self):
        t = Trace()
        seen = []
        t.subscribe("a", seen.append)
        t.record(1, "a", "x")
        t.record(2, "b", "y")
        assert seen == [TraceRecord(1, "a", ("x",))]

    def test_subscribe_widens_topic_filter(self):
        t = Trace(topics={"a"})
        seen = []
        t.subscribe("b", seen.append)
        t.record(1, "b", "x")
        assert len(seen) == 1  # subscribing added "b" to the filter
        assert t.records[0].topic == "b"

    def test_by_topic(self):
        t = Trace()
        t.record(1, "a", 1)
        t.record(2, "b", 2)
        t.record(3, "a", 3)
        assert [r.time for r in t.by_topic("a")] == [1, 3]


class TestDropPolicies:
    def test_default_keeps_oldest(self):
        t = Trace(capacity=2)
        for i in range(4):
            t.record(i, "a", i)
        assert [r.time for r in t.records] == [0, 1]
        assert t.dropped == 2
        assert t.snapshot()["policy"] == "keep-oldest"

    def test_ring_keeps_newest(self):
        t = Trace(capacity=2, ring=True)
        for i in range(4):
            t.record(i, "a", i)
        assert [r.time for r in t.records] == [2, 3]
        assert t.dropped == 2
        assert t.snapshot()["policy"] == "ring-keep-newest"

    def test_ring_requires_capacity(self):
        with pytest.raises(ValueError):
            Trace(ring=True)

    def test_subscribers_see_records_past_capacity(self):
        t = Trace(capacity=1, ring=True)
        seen = []
        t.subscribe("a", seen.append)
        for i in range(3):
            t.record(i, "a", i)
        assert len(seen) == 3  # capacity bounds memory, not the stream
        assert len(t.records) == 1

    def test_clear_resets_buffer_and_drop_count(self):
        t = Trace(capacity=1)
        t.record(0, "a")
        t.record(1, "a")
        assert t.dropped == 1
        t.clear()
        assert list(t.records) == [] and t.dropped == 0

    def test_snapshot_shape(self):
        t = Trace(topics={"b", "a"}, capacity=8, ring=True)
        t.record(0, "a")
        assert t.snapshot() == {
            "retained": 1,
            "dropped": 0,
            "capacity": 8,
            "policy": "ring-keep-newest",
            "topics": ["a", "b"],
        }

    def test_snapshot_unbounded(self):
        snap = Trace().snapshot()
        assert snap["capacity"] is None and snap["topics"] is None
        assert snap["policy"] == "keep-oldest"


class TestNullTrace:
    def test_disabled_and_inert(self):
        n = NullTrace()
        assert n.enabled is False
        n.record(0, "a", "payload")  # no-op

    def test_subscribe_rejected(self):
        with pytest.raises(TypeError):
            NullTrace().subscribe("a", lambda rec: None)
