"""Span-based packet-lifecycle tracing: decomposition exactness,
sampling policies, ring retention, and the full-run integration.

The load-bearing property (the ``trace blame`` analyzer depends on it):
every retained trace's spans telescope -- integer-ns durations that sum
to *exactly* ``deliver - birth``.  Hypothesis drives synthetic event
chains through :func:`decompose_events`, and the integration tests check
the same invariant on every trace a real run retains, including a
clock-skew (TTD) run where deadlines ride on skewed local clocks.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.network.fabric import FabricParams
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    NULL_TRACER,
    NullPacketTracer,
    PacketTracer,
    Span,
    SpanTrace,
    decompose_events,
    read_spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.sim import units
from tests.helpers import mkpkt


class FakeLink:
    """1 byte/ns link stand-in: occupancy == packet size."""

    def occupancy_ns(self, size_bytes: int) -> int:
        return size_bytes


LINK = FakeLink()


def _trace(spans, *, birth=0, deliver=None, slack=-5):
    spans = tuple(spans)
    if deliver is None:
        deliver = spans[-1].end_ns if spans else birth
    return SpanTrace(
        uid=1, flow_id=2, tclass="video", vc=0, src=0, dst=1, size=100,
        deadline=deliver + slack, birth_ns=birth, deliver_ns=deliver,
        slack_ns=slack, missed=slack < 0, spans=spans,
    )


class TestSpanTrace:
    def test_verify_accepts_exact_chain(self):
        trace = _trace([
            Span("host.queue_wait", "h0", 0, 10),
            Span("link.transmit", "h0", 10, 100),
            Span("link.propagate", "h0", 110, 20),
        ])
        trace.verify()
        assert trace.e2e_ns == 130 == sum(s.dur_ns for s in trace.spans)

    def test_verify_rejects_gap(self):
        trace = _trace(
            [Span("host.queue_wait", "h0", 0, 10), Span("link.transmit", "h0", 11, 5)],
            deliver=16,
        )
        with pytest.raises(ValueError, match="gap or overlap"):
            trace.verify()

    def test_verify_rejects_negative_duration(self):
        trace = _trace([Span("host.queue_wait", "h0", 0, -1)], deliver=-1)
        with pytest.raises(ValueError, match="negative"):
            trace.verify()

    def test_verify_rejects_non_exact_sum(self):
        trace = _trace([Span("host.queue_wait", "h0", 0, 10)], deliver=11)
        with pytest.raises(ValueError, match="not exact"):
            trace.verify()

    def test_dict_roundtrip(self):
        trace = _trace([
            Span("host.queue_wait", "h0", 5, 10),
            Span("link.transmit", "h0", 15, 100),
        ], birth=5)
        clone = SpanTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert clone.to_dict() == trace.to_dict()
        assert clone.spans == trace.spans
        clone.verify()


class TestDecomposeEvents:
    def test_full_lifecycle(self):
        events = [
            ("submit", "h0", 100, 0),
            ("eligible", "", 130, 0),
            ("inject", "", 150, 0),
            ("arrive", "sw0", 300, 120),     # 150ns segment, 120 serializing
            ("forward", "sw0", 340, 0),
            ("deliver", "h1", 480, 120),
        ]
        spans = decompose_events(events)
        assert [s.stage for s in spans] == [
            "host.eligible_wait", "host.queue_wait",
            "link.transmit", "link.propagate",
            "switch.voq_wait",
            "link.transmit", "link.propagate",
        ]
        # the wire segments are attributed to their *sender*
        assert spans[2].node == "h0" and spans[5].node == "sw0"
        assert sum(s.dur_ns for s in spans) == 480 - 100
        assert spans[0].start_ns == 100 and spans[-1].end_ns == 480

    def test_requires_submit_first(self):
        with pytest.raises(ValueError, match="must start with 'submit'"):
            decompose_events([("inject", "", 0, 0)])
        with pytest.raises(ValueError, match="must start with 'submit'"):
            decompose_events([])

    def test_rejects_time_regression(self):
        with pytest.raises(ValueError, match="precedes"):
            decompose_events([("submit", "h0", 10, 0), ("inject", "", 9, 0)])

    def test_rejects_serialization_overflow(self):
        with pytest.raises(ValueError, match="does not fit"):
            decompose_events([("submit", "h0", 0, 0), ("deliver", "h1", 10, 11)])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown lifecycle event"):
            decompose_events([("submit", "h0", 0, 0), ("teleport", "h1", 5, 0)])


@st.composite
def event_chains(draw):
    """A structurally valid lifecycle: submit, optional eligible, inject,
    N switch hops (arrive+forward), deliver -- with arbitrary non-negative
    waits and a serialization share of each wire segment."""
    t = draw(st.integers(0, 10**9))
    events = [("submit", "h0", t, 0)]
    if draw(st.booleans()):
        t += draw(st.integers(0, 10**6))
        events.append(("eligible", "", t, 0))
    t += draw(st.integers(0, 10**6))
    events.append(("inject", "", t, 0))
    hops = draw(st.integers(0, 4))
    for hop in range(hops):
        seg = draw(st.integers(0, 10**6))
        ser = draw(st.integers(0, seg))
        t += seg
        events.append(("arrive", f"sw{hop}", t, ser))
        t += draw(st.integers(0, 10**6))
        events.append(("forward", f"sw{hop}", t, 0))
    seg = draw(st.integers(0, 10**6))
    ser = draw(st.integers(0, seg))
    t += seg
    events.append(("deliver", "h1", t, ser))
    return events


class TestDecompositionProperty:
    @settings(max_examples=200, deadline=None)
    @given(event_chains())
    def test_spans_telescope_exactly(self, events):
        spans = decompose_events(events)
        birth, deliver = events[0][2], events[-1][2]
        # integer-sum identity: no remainder, no float
        assert sum(s.dur_ns for s in spans) == deliver - birth
        # telescoping: each span starts where the previous ended
        t = birth
        for span in spans:
            assert span.start_ns == t and span.dur_ns >= 0
            t = span.end_ns
        assert t == deliver
        # SpanTrace.verify agrees with the manual check
        _trace(spans, birth=birth, deliver=deliver).verify()


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullPacketTracer)
        pkt = mkpkt(1000)
        NULL_TRACER.begin(pkt, 0, "h0")
        NULL_TRACER.event(pkt, "inject", 5)
        NULL_TRACER.arrive(pkt, 10, "sw0", LINK)
        NULL_TRACER.finish(pkt, 20, node="h1", link=LINK, slack_ns=980)
        assert pkt.traced is False
        assert NULL_TRACER.snapshot() == {}


class TestPacketTracerValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown sampling policy"):
            PacketTracer(policy="middle")

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError, match="rate"):
            PacketTracer(policy="head", rate=1.5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            PacketTracer(capacity=0)


def _drive(tracer, pkt, *, submit, deliver, slack):
    """Run one packet through the minimal hook sequence."""
    tracer.begin(pkt, submit, "h0")
    if pkt.traced:
        tracer.event(pkt, "inject", submit + 1)
    pkt.birth = submit
    tracer.finish(pkt, deliver, node="h1", link=LINK, slack_ns=slack)


class TestTailPolicy:
    def test_retains_only_misses(self):
        tracer = PacketTracer(policy="tail", capacity=16)
        hit, miss = mkpkt(10_000, size=10), mkpkt(5, size=10)
        _drive(tracer, hit, submit=0, deliver=100, slack=9_900)
        _drive(tracer, miss, submit=0, deliver=100, slack=-95)
        assert tracer.sampled == 2 and tracer.completed == 2
        assert tracer.misses == 1
        assert [t.uid for t in tracer.records] == [miss.uid]
        assert tracer.records[0].missed is True
        tracer.records[0].verify()

    def test_snapshot_ledger(self):
        tracer = PacketTracer(policy="tail", capacity=8, seed=7)
        _drive(tracer, mkpkt(5, size=10), submit=0, deliver=100, slack=-95)
        snap = tracer.snapshot()
        assert snap == {
            "policy": "tail-deadline-miss",
            "rate": 1.0,  # tail tracks everything; rate is head-only
            "capacity": 8,
            "seed": 7,
            "sampled": 1,
            "unsampled": 0,
            "completed": 1,
            "misses": 1,
            "retained": 1,
            "dropped": 0,
            "inflight": 0,
        }

    def test_ring_drops_oldest_and_counts(self):
        tracer = PacketTracer(policy="tail", capacity=2)
        pkts = [mkpkt(5, size=10) for _ in range(5)]
        for pkt in pkts:
            _drive(tracer, pkt, submit=0, deliver=100, slack=-95)
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        # newest kept, like Trace(ring=True)
        assert [t.uid for t in tracer.records] == [pkts[-2].uid, pkts[-1].uid]

    def test_mints_per_class_retained_counter(self):
        reg = MetricsRegistry()
        tracer = PacketTracer(policy="tail", capacity=8, metrics=reg)
        _drive(tracer, mkpkt(5, size=10, tclass="video"), submit=0, deliver=100, slack=-95)
        _drive(tracer, mkpkt(5, size=10, tclass="video"), submit=0, deliver=100, slack=-95)
        snap = reg.snapshot()
        assert snap["obs.tracing.class.video.retained_total"]["value"] == 2


class TestHeadPolicy:
    def test_deterministic_per_flow_sampling(self):
        def decisions(seed):
            tracer = PacketTracer(policy="head", rate=0.3, seed=seed, capacity=512)
            out = []
            for i in range(200):
                pkt = mkpkt(10**9, size=10, flow_id=i % 4)
                tracer.begin(pkt, i, "h0")
                out.append(pkt.traced)
            return out

        a, b = decisions(42), decisions(42)
        assert a == b, "same seed must sample the same packets"
        assert decisions(43) != a, "different seed should differ somewhere"
        assert 0 < sum(a) < 200, "rate 0.3 should sample some, not all"

    def test_flow_isolation(self):
        """Adding a flow never perturbs the draws of existing flows: the
        stream is derived from (seed, flow_id), not interleaved."""

        def flow0_decisions(flow_ids):
            tracer = PacketTracer(policy="head", rate=0.5, seed=9, capacity=512)
            out = []
            for i in range(100):
                for fid in flow_ids:
                    pkt = mkpkt(10**9, size=10, flow_id=fid)
                    tracer.begin(pkt, i, "h0")
                    if fid == 0:
                        out.append(pkt.traced)
            return out

        assert flow0_decisions([0]) == flow0_decisions([0, 1, 2])

    def test_head_retains_hits_too(self):
        tracer = PacketTracer(policy="head", rate=1.0, capacity=16)
        hit = mkpkt(10_000, size=10)
        _drive(tracer, hit, submit=0, deliver=100, slack=9_900)
        assert len(tracer.records) == 1
        assert tracer.records[0].missed is False

    def test_unsampled_counted_and_untracked(self):
        tracer = PacketTracer(policy="head", rate=0.0, capacity=16)
        pkt = mkpkt(10_000, size=10)
        _drive(tracer, pkt, submit=0, deliver=100, slack=9_900)
        assert pkt.traced is False
        assert tracer.unsampled == 1 and tracer.sampled == 0
        assert tracer.inflight == 0 and tracer.completed == 0


class TestExportRoundtrip:
    def _tracer_with_records(self):
        tracer = PacketTracer(policy="tail", capacity=16)
        for _ in range(3):
            _drive(tracer, mkpkt(5, size=10), submit=0, deliver=100, slack=-95)
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._tracer_with_records()
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as fp:
            assert write_spans_jsonl(tracer, fp) == 3
        header, traces = read_spans_jsonl(str(path))
        assert header["type"] == "span-trace-summary"
        assert header["retained"] == 3
        assert [t.to_dict() for t in traces] == [t.to_dict() for t in tracer.records]
        for trace in traces:
            trace.verify()

    def test_jsonl_is_byte_stable(self, tmp_path):
        tracer = self._tracer_with_records()
        a, b = io.StringIO(), io.StringIO()
        write_spans_jsonl(tracer, a)
        write_spans_jsonl(tracer, b)
        assert a.getvalue() == b.getvalue()

    def test_read_rejects_non_span_dump(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"type": "trace-summary"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a span-trace dump"):
            read_spans_jsonl(str(path))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            read_spans_jsonl(str(empty))

    def test_chrome_trace_shape(self):
        tracer = self._tracer_with_records()
        out = io.StringIO()
        written = write_chrome_trace(tracer.records, out, run_info={"seed": 1})
        doc = json.loads(out.getvalue())
        assert doc["otherData"] == {"seed": 1}
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert written == len(spans) == sum(len(t.spans) for t in tracer.records)
        assert len(meta) == 1  # one process_name row per flow
        assert meta[0]["args"]["name"].startswith("flow 1")
        # exact integers ride in args even though ts/dur are us floats
        span = spans[0]
        assert span["args"]["dur_ns"] == round(span["dur"] * 1000)


def _config(**params):
    return ExperimentConfig(
        architecture="advanced-2vc",
        load=1.0,
        seed=1,
        topology="tiny",
        warmup_ns=50 * units.US,
        measure_ns=150 * units.US,
        mix=scaled_video_mix(1.0, 0.02),
        params=FabricParams(**params) if params else FabricParams(),
    )


class TestRunIntegration:
    def test_tail_run_retains_exact_miss_traces(self):
        tracer = PacketTracer(policy="tail", capacity=4096, seed=1)
        result = run_experiment(_config(), tracer=tracer)
        assert result.tracer is tracer
        assert tracer.completed > 100
        assert tracer.misses > 0
        assert len(tracer.records) > 0
        for trace in tracer.records:
            assert trace.missed and trace.slack_ns < 0
            trace.verify()  # exact integer decomposition, every trace
            assert sum(s.dur_ns for s in trace.spans) == trace.e2e_ns

    def test_head_run_samples_deterministically(self):
        snap_a = run_experiment(
            _config(), tracer=PacketTracer(policy="head", rate=0.05, seed=3)
        ).tracer.snapshot()
        snap_b = run_experiment(
            _config(), tracer=PacketTracer(policy="head", rate=0.05, seed=3)
        ).tracer.snapshot()
        assert snap_a == snap_b
        assert snap_a["sampled"] > 0 and snap_a["unsampled"] > 0

    def test_ttd_clock_skew_run_still_decomposes_exactly(self):
        """Under Section 3.3 skewed clocks the deadline/slack bookkeeping
        moves to local clocks, but span timestamps are engine times -- the
        decomposition identity must be untouched."""
        tracer = PacketTracer(policy="tail", capacity=4096, seed=1)
        run_experiment(
            _config(clock_skew_ns=500, clock_skew_seed=11), tracer=tracer
        )
        assert len(tracer.records) > 0
        for trace in tracer.records:
            trace.verify()

    def test_no_tracer_leaves_packets_untraced(self):
        result = run_experiment(_config())
        assert result.tracer is None
