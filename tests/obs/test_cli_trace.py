"""End-to-end CLI tests for ``run --trace-spans/--trace-chrome`` and the
``trace blame`` / ``trace export`` subcommands, including the acceptance
gate: same-seed runs produce byte-identical blame reports."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.tracing import read_spans_jsonl

FAST = ["--topology", "tiny", "--warmup-us", "50", "--measure-us", "120"]


def _run_with_spans(tmp_path, name="spans.jsonl", extra=()):
    out = tmp_path / name
    rc = main(
        [
            "run",
            "--arch",
            "advanced-2vc",
            "--load",
            "1.0",
            *FAST,
            "--trace-spans",
            str(out),
            *extra,
        ]
    )
    assert rc == 0
    return out


class TestRunTraceSpans:
    def test_dump_is_loadable_and_exact(self, tmp_path, capsys):
        path = _run_with_spans(tmp_path)
        err = capsys.readouterr().err
        assert "[span traces written to" in err
        header, traces = read_spans_jsonl(str(path))
        assert header["policy"] == "tail-deadline-miss"
        assert header["retained"] == len(traces) > 0
        for trace in traces:
            assert trace.missed
            trace.verify()

    def test_head_policy_flags(self, tmp_path, capsys):
        path = _run_with_spans(
            tmp_path, extra=["--span-policy", "head", "--span-rate", "0.05"]
        )
        capsys.readouterr()
        header, traces = read_spans_jsonl(str(path))
        assert header["policy"] == "head-probabilistic"
        assert header["rate"] == 0.05
        assert header["unsampled"] > 0
        # head sampling keeps hits as well as misses
        assert any(not t.missed for t in traces)

    def test_bad_span_rate_is_exit_2(self, tmp_path, capsys):
        rc = main(
            [
                "run", "--load", "1.0", *FAST,
                "--trace-spans", str(tmp_path / "s.jsonl"),
                "--span-policy", "head", "--span-rate", "1.5",
            ]
        )
        assert rc == 2
        assert "rate" in capsys.readouterr().err

    def test_chrome_export_from_run(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        _run_with_spans(tmp_path, extra=["--trace-chrome", str(chrome)])
        capsys.readouterr()
        doc = json.loads(chrome.read_text(encoding="utf-8"))
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert doc["otherData"]["topology"] == "tiny"

    def test_snapshot_gains_spans_section(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        _run_with_spans(tmp_path, extra=["--metrics-out", str(snap)])
        capsys.readouterr()
        doc = json.loads(snap.read_text(encoding="utf-8"))
        assert doc["spans"]["policy"] == "tail-deadline-miss"
        assert doc["spans"]["retained"] > 0
        assert doc["spans"]["sampled"] >= doc["spans"]["completed"]
        # the per-class retained counters were minted into the registry
        assert any(
            name.startswith("obs.tracing.class.") for name in doc["metrics"]
        )

    def test_snapshot_without_tracer_has_no_spans(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        rc = main(
            ["run", "--load", "1.0", *FAST, "--metrics-out", str(snap)]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(snap.read_text(encoding="utf-8"))
        assert "spans" not in doc


class TestTraceBlame:
    def test_blame_end_to_end(self, tmp_path, capsys):
        path = _run_with_spans(tmp_path)
        capsys.readouterr()
        assert main(["trace", "blame", str(path)]) == 0
        captured = capsys.readouterr()
        out = captured.out
        assert "retained trace(s), policy tail-deadline-miss" in captured.err
        assert "blame:" in out and "class " in out
        assert "host.queue_wait" in out or "switch.voq_wait" in out

    def test_blame_byte_identical_across_same_seed_runs(self, tmp_path, capsys):
        a = _run_with_spans(tmp_path, "a.jsonl", extra=["--seed", "5"])
        b = _run_with_spans(tmp_path, "b.jsonl", extra=["--seed", "5"])
        # The dumps match modulo packet uids (the global uid counter keeps
        # counting across in-process runs; separate CLI invocations are
        # fully byte-identical, which CI's trace-smoke job checks).
        def _normalized(path):
            lines = path.read_text(encoding="utf-8").splitlines()
            docs = [json.loads(line) for line in lines[1:]]
            for doc in docs:
                doc.pop("uid")
            return [lines[0]] + docs
        assert _normalized(a) == _normalized(b)
        capsys.readouterr()
        assert main(["trace", "blame", str(a), "--json"]) == 0
        out_a = capsys.readouterr().out
        assert main(["trace", "blame", str(b), "--json"]) == 0
        out_b = capsys.readouterr().out
        assert out_a == out_b and out_a

    def test_blame_json_and_all(self, tmp_path, capsys):
        path = _run_with_spans(
            tmp_path, extra=["--span-policy", "head", "--span-rate", "0.05"]
        )
        capsys.readouterr()
        assert main(["trace", "blame", str(path), "--json", "--all", "--top", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["missed_only"] is False
        assert doc["packets"] >= doc["misses"]
        for cls in doc["classes"]:
            assert len(cls["hotspots"]) <= 2

    def test_blame_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["trace", "blame", str(tmp_path / "nope.jsonl")]) == 2
        assert "trace:" in capsys.readouterr().err

    def test_blame_wrong_dump_type_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "other.jsonl"
        path.write_text('{"type": "trace-summary"}\n', encoding="utf-8")
        assert main(["trace", "blame", str(path)]) == 2
        assert "not a span-trace dump" in capsys.readouterr().err

    def test_blame_bad_top_is_exit_2(self, tmp_path, capsys):
        path = _run_with_spans(tmp_path)
        capsys.readouterr()
        assert main(["trace", "blame", str(path), "--top", "0"]) == 2


class TestTraceExport:
    def test_export_round_trip(self, tmp_path, capsys):
        spans = _run_with_spans(tmp_path)
        out = tmp_path / "chrome.json"
        capsys.readouterr()
        assert main(["trace", "export", str(spans), "-o", str(out)]) == 0
        assert "[chrome trace written" in capsys.readouterr().err
        doc = json.loads(out.read_text(encoding="utf-8"))
        _, traces = read_spans_jsonl(str(spans))
        span_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(span_events) == sum(len(t.spans) for t in traces)
        assert doc["otherData"] == {"source": str(spans)}
