"""``trace blame`` root-cause attribution: exact integer aggregation,
deterministic (byte-stable) reports, and the verify-first contract."""

from __future__ import annotations

import json

import pytest

from repro.obs.blame import analyze_blame
from repro.obs.tracing import Span, SpanTrace


def _trace(uid, tclass, spans, *, slack=-10, flow_id=1):
    spans = tuple(spans)
    birth = spans[0].start_ns
    deliver = spans[-1].end_ns
    return SpanTrace(
        uid=uid, flow_id=flow_id, tclass=tclass, vc=0, src=0, dst=1,
        size=100, deadline=deliver + slack, birth_ns=birth,
        deliver_ns=deliver, slack_ns=slack, missed=slack < 0, spans=spans,
    )


def _miss(uid, tclass="video", *, queue=40, voq=50, slack=-10, node="sw0"):
    return _trace(uid, tclass, [
        Span("host.queue_wait", "h0", 0, queue),
        Span("link.transmit", "h0", queue, 10),
        Span("switch.voq_wait", node, queue + 10, voq),
        Span("link.transmit", node, queue + 10 + voq, 10),
    ], slack=slack)


class TestAggregation:
    def test_per_class_stage_totals_are_exact_integers(self):
        report = analyze_blame([
            _miss(1, "video", queue=40, voq=50),
            _miss(2, "video", queue=60, voq=5),
            _miss(3, "control", queue=1, voq=2),
        ])
        assert report.packets == 3 and report.misses == 3
        assert sorted(report.classes) == ["control", "video"]
        video = report.classes["video"]
        assert video.packets == 2
        assert video.stage_totals == {
            "host.queue_wait": 100,
            "link.transmit": 40,
            "switch.voq_wait": 55,
        }
        assert video.stage_counts["link.transmit"] == 4
        # stage totals partition the e2e total exactly
        assert sum(video.stage_totals.values()) == video.e2e_total_ns

    def test_ranked_stages_by_total_then_name(self):
        report = analyze_blame([_miss(1, queue=50, voq=50)])
        ranked = report.classes["video"].ranked_stages()
        assert [r[0] for r in ranked] == [
            "host.queue_wait", "switch.voq_wait", "link.transmit",
        ]  # 50 == 50 tie broken by name; transmit (20) last

    def test_deficit_and_worst_slack(self):
        report = analyze_blame([_miss(1, slack=-10), _miss(2, slack=-70)])
        video = report.classes["video"]
        assert video.deficit_ns == 80
        assert video.worst_slack_ns == -70

    def test_hotspots_top_n(self):
        traces = [_miss(i, node=f"sw{i % 3}") for i in range(9)]
        report = analyze_blame(traces, top=2)
        hotspots = report.classes["video"].ranked_hotspots(2)
        assert len(hotspots) == 2
        # all sites tie at 3 spans x 50ns -> deterministic (stage, node) order
        assert hotspots[0][:2] == ("host.queue_wait", "h0")

    def test_missed_only_skips_hits_but_counts_misses(self):
        hit = _miss(1, slack=5)
        miss = _miss(2, slack=-5)
        report = analyze_blame([hit, miss], missed_only=True)
        assert report.packets == 1 and report.misses == 1
        all_report = analyze_blame([hit, miss], missed_only=False)
        assert all_report.packets == 2 and all_report.misses == 1

    def test_top_must_be_positive(self):
        with pytest.raises(ValueError, match="top"):
            analyze_blame([], top=0)

    def test_corrupt_trace_fails_loudly(self):
        bad = _miss(1)
        bad.deliver_ns += 1  # break the telescoping identity
        with pytest.raises(ValueError, match="not exact"):
            analyze_blame([bad])


class TestReportOutput:
    def test_format_is_byte_stable(self):
        traces = [_miss(i, "video" if i % 2 else "control") for i in range(6)]
        a = analyze_blame(traces).format()
        b = analyze_blame(list(traces)).format()
        assert a == b
        assert a.endswith("\n")

    def test_format_sections(self):
        text = analyze_blame([_miss(1, queue=60, voq=20)]).format()
        assert "blame: 1 missed packet(s)" in text
        assert "class video:" in text
        assert "host.queue_wait" in text and "switch.voq_wait" in text
        assert "top" in text and "@ sw0" in text
        # shares are over the class e2e total: 60/100
        assert "60.0%" in text

    def test_format_empty(self):
        text = analyze_blame([]).format()
        assert "0 missed packet(s)" in text
        assert "nothing to attribute" in text

    def test_json_output_deterministic_and_ordered(self):
        traces = [_miss(i, "video" if i % 2 else "control") for i in range(4)]
        report = analyze_blame(traces)
        doc = json.loads(report.format_json())
        assert doc["type"] == "trace-blame"
        assert [c["tclass"] for c in doc["classes"]] == ["control", "video"]
        assert report.format_json() == analyze_blame(traces).format_json()
        for cls in doc["classes"]:
            assert sum(s["total_ns"] for s in cls["stages"]) == cls["e2e_total_ns"]
