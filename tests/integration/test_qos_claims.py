"""The paper's Section 5 claims as executable assertions (scaled down).

One shared full-load sweep over the four architectures on the tiny
network (time-scaled video), then each claim reads off it:

- Figure 2: EDF architectures beat Traditional on control latency by a
  large factor; Ideal <= Advanced <= Simple.
- Figure 3: EDF architectures pin video frame latency near the target
  with small jitter; Traditional's frame latency spreads widely.
- Figure 4: EDF differentiates the two best-effort classes by their
  deadline weights; Traditional cannot tell them apart.

Scale note: the *shape* claims (orderings, differentiation) are asserted
strictly; the paper's exact 25%/5% overhead factors are workload- and
scale-dependent, so the assertions bound them loosely (EXPERIMENTS.md
records the measured factors at larger scale).
"""

import pytest

from repro.experiments.config import scaled_video_mix
from repro.experiments.figures import sweep
from repro.sim import units

ARCHS = ("traditional-2vc", "ideal", "simple-2vc", "advanced-2vc")
TIME_SCALE = 0.02
TARGET_NS = round(10 * units.MS * TIME_SCALE)
# Warm-up must cover the video ramp: streams phase in over one frame
# period (800 us at this scale) and frames take one target (200 us).
WARMUP_NS = 1_100 * units.US


@pytest.fixture(scope="module")
def full_load_results():
    return sweep(
        ARCHS,
        (1.0,),
        topology="tiny",
        seed=5,
        warmup_ns=WARMUP_NS,
        measure_ns=1_600 * units.US,
        mix_factory=lambda load: scaled_video_mix(load, TIME_SCALE),
    )


def control_mean(results, arch):
    return results[(arch, 1.0)].get("control").message_latency.mean


class TestFigure2Control:
    def test_edf_architectures_far_outperform_traditional(self, full_load_results):
        traditional = control_mean(full_load_results, "traditional-2vc")
        for arch in ("ideal", "simple-2vc", "advanced-2vc"):
            assert control_mean(full_load_results, arch) * 3 < traditional

    def test_ideal_is_the_lower_bound(self, full_load_results):
        ideal = control_mean(full_load_results, "ideal")
        for arch in ("simple-2vc", "advanced-2vc"):
            # Small statistical slack: ideal must not lose meaningfully.
            assert ideal <= control_mean(full_load_results, arch) * 1.02

    def test_advanced_at_most_simple(self, full_load_results):
        advanced = control_mean(full_load_results, "advanced-2vc")
        simple = control_mean(full_load_results, "simple-2vc")
        assert advanced <= simple * 1.02

    def test_overheads_within_paper_magnitudes(self, full_load_results):
        """Paper: Simple ~ +25%, Advanced ~ +5% over Ideal.  At this scale
        the order errors are milder; assert generous upper bounds."""
        ideal = control_mean(full_load_results, "ideal")
        assert control_mean(full_load_results, "simple-2vc") <= 1.4 * ideal
        assert control_mean(full_load_results, "advanced-2vc") <= 1.15 * ideal

    def test_cdf_tail_advanced_close_to_ideal(self, full_load_results):
        """'Maximum latency values are almost the same for Ideal and
        Advanced' -- compare 99th percentiles."""
        ideal = (
            full_load_results[("ideal", 1.0)].get("control")
            .message_cdf().quantile(0.99)
        )
        advanced = (
            full_load_results[("advanced-2vc", 1.0)].get("control")
            .message_cdf().quantile(0.99)
        )
        assert advanced <= ideal * 1.25


class TestFigure3Video:
    @pytest.mark.parametrize("arch", ["ideal", "simple-2vc", "advanced-2vc"])
    def test_frame_latency_pinned_at_target(self, full_load_results, arch):
        stats = full_load_results[(arch, 1.0)].get("multimedia")
        assert stats.message_latency.mean == pytest.approx(TARGET_NS, rel=0.15)

    @pytest.mark.parametrize("arch", ["ideal", "advanced-2vc"])
    def test_frame_latency_concentrated(self, full_load_results, arch):
        """Paper: >99% of frames within +/-1 ms of the 10 ms target.  The
        dispersion around the target is *absolute* network queueing (tens
        of microseconds, independent of the video time scale), so at this
        compressed scale we assert the same absolute band the paper's
        claim implies: nearly all frames within target +/- ~150 us."""
        cdf = full_load_results[(arch, 1.0)].get("multimedia").message_cdf()
        slack = 150 * units.US
        within = cdf.prob_leq(TARGET_NS + slack) - cdf.prob_leq(TARGET_NS - slack)
        assert within > 0.95
        # And no frame finishes meaningfully *early*: pacing holds frames
        # until their eligible window.
        assert cdf.quantile(0.01) > 0.8 * TARGET_NS

    def test_traditional_spreads_frame_latency(self, full_load_results):
        """Without deadline pacing, frame latency varies with frame size
        and load: its spread is much wider than the EDF architectures'."""
        spread = {}
        for arch in ("traditional-2vc", "advanced-2vc"):
            cdf = full_load_results[(arch, 1.0)].get("multimedia").message_cdf()
            spread[arch] = (cdf.quantile(0.95) - cdf.quantile(0.05)) / TARGET_NS
        assert spread["traditional-2vc"] > 2 * spread["advanced-2vc"]

    def test_edf_jitter_small(self, full_load_results):
        jitter = full_load_results[("advanced-2vc", 1.0)].get("multimedia").jitter
        assert jitter.mean < 0.2 * TARGET_NS


class TestFigure4BestEffort:
    def test_edf_differentiates_by_weight(self, full_load_results):
        """Best-effort carries twice background's deadline weight, so under
        saturation it must receive measurably more throughput."""
        result = full_load_results[("advanced-2vc", 1.0)]
        be = result.throughput("best-effort")
        bg = result.throughput("background")
        assert be > 1.15 * bg

    def test_traditional_cannot_differentiate(self, full_load_results):
        result = full_load_results[("traditional-2vc", 1.0)]
        be = result.throughput("best-effort")
        bg = result.throughput("background")
        assert be == pytest.approx(bg, rel=0.15)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_regulated_classes_get_their_throughput(self, full_load_results, arch):
        """Admitted traffic is never starved: multimedia delivers its
        offered load under every architecture."""
        result = full_load_results[(arch, 1.0)]
        assert result.normalized_throughput("multimedia") > 0.8
