"""Adversarial hotspot (incast) scenarios.

The paper's QoS promise is isolation: admitted traffic keeps its
guarantees even when unregulated traffic abuses the network.  These
tests build the worst case -- every host blasting best-effort traffic at
one victim destination -- and check that:

- admitted (control / video) flows crossing the hotspot still meet
  their deadlines under the EDF architectures;
- the best-effort aggressors share the victim link without starving any
  single aggressor (EDF over aggregated-flow deadlines is long-run fair);
- the traditional architecture, by contrast, lets the incast hurt the
  QoS classes (which is exactly why the paper exists).
"""

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.core.flow import FlowKind
from repro.network.fabric import Fabric
from repro.sim import units
from repro.stats.flows import PerFlowCollector
from repro.traffic.cbr import CbrSource


VICTIM = 0
MEASURE_NS = 800 * units.US


def build_incast(tiny_topology, arch: str):
    """All other hosts send best-effort CBR at the victim at full rate;
    one admitted control flow and one admitted video-ish flow cross the
    hotspot."""
    fabric = Fabric(tiny_topology, ARCHITECTURES[arch])
    flows = PerFlowCollector()
    fabric.subscribe_delivery(flows.on_delivery)

    aggressors = []
    for src in range(1, fabric.topology.n_hosts):
        source = CbrSource(
            fabric,
            src,
            VICTIM,
            0.9,  # 90% of link rate each: massive oversubscription of h0
            message_bytes=2048,
            tclass="best-effort",
            vc=1,
        )
        source.start(at=0)
        aggressors.append(source)

    control = fabric.open_flow(5, VICTIM, "control", kind=FlowKind.CONTROL)
    video = fabric.open_flow(
        9,
        VICTIM,
        "multimedia",
        kind=FlowKind.FRAME,
        bw_bytes_per_ns=0.05,
        target_latency_ns=100 * units.US,
        smoothing=True,
    )
    return fabric, flows, control, video


class TestEDFIsolation:
    @pytest.fixture(scope="class", params=["advanced-2vc", "ideal"])
    def incast(self, request):
        from repro.network.topology import build_folded_shuffle_min

        topo = build_folded_shuffle_min(4, 4, 4)
        fabric, flows, control, video = build_incast(topo, request.param)
        # Sprinkle admitted traffic throughout the incast.
        for t in range(0, MEASURE_NS, 50 * units.US):
            fabric.engine.at(t, fabric.submit, control, 256)
        fabric.engine.at(10 * units.US, fabric.submit, video, 40_000)
        fabric.engine.at(410 * units.US, fabric.submit, video, 40_000)
        fabric.run(until=MEASURE_NS)
        return fabric, flows, control, video

    def test_control_unharmed_by_incast(self, incast):
        _, flows, control, _ = incast
        stats = flows.get(control.spec.flow_id)
        assert stats.packets >= 10
        # A control packet to the *victim of the incast* still arrives in
        # ~wire time + bounded VC0 queueing: the whole point of the VCs +
        # EDF design.
        assert stats.latency.max < 60 * units.US

    def test_video_meets_target_through_hotspot(self, incast):
        _, flows, _, video = incast
        stats = flows.get(video.spec.flow_id)
        assert stats.packets == 40  # both 40 KB frames fully delivered
        # Frame pacing holds: last packet ~ target after submission.
        assert stats.latency.max < 160 * units.US

    def test_aggressors_share_without_total_starvation(self, incast):
        fabric, flows, _, _ = incast
        lo, mean, hi = flows.throughput_spread("best-effort", MEASURE_NS)
        assert mean > 0
        # The victim link is ~15x oversubscribed; shares cannot be equal
        # packet-by-packet, but nobody should get literally nothing.
        assert lo > 0
        # And the victim link is kept busy: aggregate ~ link rate minus
        # the admitted traffic crossing it.
        total = sum(
            f.throughput_bytes_per_ns(MEASURE_NS) for f in flows.by_class("best-effort")
        )
        assert total > 0.6


class TestVCIsolationIsUniversal:
    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    def test_two_vcs_isolate_control_from_incast(self, tiny_topology, arch):
        """When control is the only VC0 traffic, the two-VC split alone
        (common to all four architectures) protects it from a VC1 incast:
        latency stays within a few packet times of the wire minimum.
        EDF's advantage appears when VC0 itself carries a *mix* -- that is
        what Figure 2 and the order-error benches measure."""
        fabric, flows, control, _ = build_incast(tiny_topology, arch)
        for t in range(0, MEASURE_NS, 50 * units.US):
            fabric.engine.at(t, fabric.submit, control, 256)
        fabric.run(until=MEASURE_NS)
        stats = flows.get(control.spec.flow_id)
        assert stats.packets >= 10
        assert stats.latency.mean < 20 * units.US
