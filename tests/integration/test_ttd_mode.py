"""Section 3.3 end-to-end: unsynchronized clocks change nothing.

With ``clock_skew_ns`` set, every host and switch gets a fixed random
clock offset, hosts stamp deadlines on their *local* clocks, and every
link carries the deadline as a time-to-destination and re-bases it at
the receiver.  The paper's argument (and our property tests) say EDF
decisions are invariant under this transformation; here we assert the
strongest version at system level: a skewed run is **bit-identical** to
the synchronized run -- same packets, same delivery times.
"""

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import scaled_video_mix
from repro.network.fabric import Fabric, FabricParams
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.traffic.mix import build_mix


def run_with_skew(tiny_topology, arch: str, skew_ns: int, horizon_ns: int):
    fabric = Fabric(
        tiny_topology,
        ARCHITECTURES[arch],
        FabricParams(clock_skew_ns=skew_ns, clock_skew_seed=99),
    )
    mix = build_mix(fabric, RandomStreams(7), scaled_video_mix(0.9, time_scale=0.02))
    log = []
    fabric.subscribe_delivery(lambda p, t: log.append((p.flow_id, p.seq, t)))
    mix.start()
    fabric.run(until=horizon_ns)
    return log, fabric


class TestTTDEquivalence:
    @pytest.mark.parametrize("arch", ["advanced-2vc", "simple-2vc", "ideal"])
    def test_skewed_run_identical_to_synchronized(self, tiny_topology, arch):
        horizon = 400 * units.US
        baseline, _ = run_with_skew(tiny_topology, arch, 0, horizon)
        skewed, fabric = run_with_skew(tiny_topology, arch, 2_000_000, horizon)
        assert fabric.clock_domain is not None
        # The skew actually exists (not all offsets zero)...
        offsets = {
            fabric.clock_domain.offset(node)
            for node in (*tiny_topology.host_ids, *tiny_topology.switch_ids)
        }
        assert offsets != {0}
        # ...yet every packet is delivered at exactly the same time.
        assert skewed == baseline

    def test_deadlines_differ_on_the_wire(self, tiny_topology):
        """Sanity that TTD mode is really doing something: the *tag* a
        skewed destination observes differs from the synchronized one by
        exactly the destination's clock offset."""
        horizon = 200 * units.US
        tags_sync = {}
        tags_skew = {}

        for skew, sink in ((0, tags_sync), (2_000_000, tags_skew)):
            fabric = Fabric(
                tiny_topology,
                ARCHITECTURES["advanced-2vc"],
                FabricParams(clock_skew_ns=skew, clock_skew_seed=99),
            )
            mix = build_mix(
                fabric, RandomStreams(7), scaled_video_mix(0.5, time_scale=0.02)
            )
            fabric.subscribe_delivery(
                lambda p, t, sink=sink, fab=fabric: sink.setdefault(
                    (p.flow_id, p.seq), (p.deadline, p.dst, fab)
                )
            )
            mix.start()
            fabric.run(until=horizon)

        assert tags_sync and tags_skew
        checked = 0
        for key, (deadline_sync, dst, _) in tags_sync.items():
            if key not in tags_skew:
                continue
            deadline_skew, _, fab = tags_skew[key]
            expected = deadline_sync + fab.clock_domain.offset(
                fab.topology.host_id(dst)
            )
            assert deadline_skew == expected
            checked += 1
        assert checked > 100
