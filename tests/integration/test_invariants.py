"""Fabric-wide invariants: losslessness, in-order delivery, credit health.

These run the full Table 1 mix over every architecture on the tiny
network and check the structural properties the paper takes as given:
credit flow control means zero packet loss, and fixed routing plus the
take-over queue's theorem mean per-flow FIFO delivery end to end.
"""

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import scaled_video_mix
from repro.network.fabric import Fabric
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.traffic.mix import build_mix


@pytest.fixture(params=sorted(ARCHITECTURES))
def loaded_run(request, tiny_topology):
    """A 300 us full-load run; returns (fabric, mix)."""
    fabric = Fabric(tiny_topology, ARCHITECTURES[request.param])
    mix = build_mix(fabric, RandomStreams(11), scaled_video_mix(1.0, time_scale=0.02))
    deliveries = []
    fabric.subscribe_delivery(lambda p, t: deliveries.append(p))
    mix.start()
    fabric.run(until=300 * units.US)
    return fabric, mix, deliveries


class TestLosslessness:
    def test_packet_conservation(self, loaded_run):
        """Every submitted packet is delivered, queued, or on a wire --
        none vanish (no drops) and none duplicate."""
        fabric, mix, _ = loaded_run
        submitted = sum(h.packets_submitted for h in fabric.hosts)
        received = sum(h.packets_received for h in fabric.hosts)
        queued = fabric.queued_in_hosts() + fabric.queued_in_switches()
        in_flight = submitted - received - queued
        assert in_flight >= 0
        # Wires hold at most one packet per link (store-and-forward).
        assert in_flight <= len(fabric.links)

    def test_drain_to_zero_and_credits_restore(self, loaded_run):
        """After sources stop, the network drains completely and every
        credit counter returns to its initial value (no credit leaks)."""
        fabric, mix, _ = loaded_run
        mix.stop()
        fabric.engine.run(max_events=30_000_000)  # drain whatever remains
        assert fabric.packets_in_flight() == 0
        for link in fabric.links.values():
            assert link.channel.credits == list(link.channel.initial), (
                f"credit leak on {link}"
            )

    def test_deliveries_unique(self, loaded_run):
        _, _, deliveries = loaded_run
        uids = [p.uid for p in deliveries]
        assert len(uids) == len(set(uids))


class TestInOrderDelivery:
    def test_per_flow_fifo_end_to_end(self, loaded_run):
        """No out-of-order delivery for any flow under any architecture
        (appendix Theorem 3, now across the whole multi-hop fabric)."""
        _, _, deliveries = loaded_run
        last_seq: dict[int, int] = {}
        for pkt in deliveries:
            previous = last_seq.get(pkt.flow_id, -1)
            assert pkt.seq > previous, (
                f"flow {pkt.flow_id} delivered seq {pkt.seq} after {previous}"
            )
            last_seq[pkt.flow_id] = pkt.seq

    def test_regulated_messages_arrive_contiguously_ordered(self, loaded_run):
        _, _, deliveries = loaded_run
        per_flow_msgs: dict[int, list[int]] = {}
        for pkt in deliveries:
            per_flow_msgs.setdefault(pkt.flow_id, []).append(pkt.msg_id)
        for flow_id, msgs in per_flow_msgs.items():
            assert msgs == sorted(msgs)


class TestHeaderDiscipline:
    def test_switch_never_reads_per_flow_header_fields(self):
        """The paper's constraint: scheduling uses only the deadline and
        the route.  Statically verify the switch implementation never
        touches flow identity, sequence numbers, or the eligible tag."""
        import inspect

        import repro.network.switch as switch_mod

        source = inspect.getsource(switch_mod)
        for forbidden in (".flow_id", ".seq", ".eligible", ".msg_id", ".birth", ".tclass"):
            assert forbidden not in source, (
                f"switch reads {forbidden}: violates the no-flow-state constraint"
            )

    def test_arbiters_use_only_deadline_and_uid(self):
        import inspect

        import repro.core.arbiter as arbiter_mod

        source = inspect.getsource(arbiter_mod)
        for forbidden in (".flow_id", ".seq", ".eligible", ".src", ".dst"):
            assert forbidden not in source
