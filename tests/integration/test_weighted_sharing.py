"""Per-flow weighted bandwidth sharing (Section 3 / Figure 4's fine print).

"Not only can we differentiate multiple classes within a single VC, but
we can guarantee minimum bandwidth if we are careful assigning weights
to the different best-effort flows."

Scenario: three best-effort senders blast one victim host far beyond
link capacity; their aggregated flow records carry deadline bandwidths
5:3:2.  Under the EDF architectures the victim link's capacity must be
divided ~proportionally (Virtual Clock's classic property), giving each
flow its weight as a *minimum* share; the traditional round-robin
switch splits roughly evenly regardless of weights.
"""

import pytest

from repro.constants import VC_BEST_EFFORT
from repro.core.architectures import ARCHITECTURES
from repro.network.fabric import Fabric
from repro.sim import units
from repro.stats.flows import PerFlowCollector
from repro.traffic.cbr import CbrSource

VICTIM = 0
WEIGHTS = {1: 0.5, 2: 0.3, 3: 0.2}  # deadline bandwidth per sender (B/ns)
MEASURE = 1_000 * units.US


def run_weighted(tiny_topology, arch: str):
    fabric = Fabric(tiny_topology, ARCHITECTURES[arch])
    flows = PerFlowCollector()
    fabric.subscribe_delivery(flows.on_delivery)
    senders = {}
    for src, weight in WEIGHTS.items():
        source = CbrSource(
            fabric,
            src,
            VICTIM,
            weight,  # offered == deadline bandwidth: each wants its share
            message_bytes=2048,
            tclass="best-effort",
            vc=VC_BEST_EFFORT,
        )
        # Oversubscribe: everyone actually offers 90% of the link, but
        # stamps deadlines against its assigned weight.
        source.rate = 0.9
        source.period_ns = source.message_bytes / 0.9
        senders[src] = source
        source.start(at=0)
    fabric.run(until=MEASURE)
    served = {
        src: next(
            f for f in flows.by_class("best-effort") if f.src == src
        ).throughput_bytes_per_ns(MEASURE)
        for src in WEIGHTS
    }
    return served


class TestWeightedSharing:
    @pytest.mark.parametrize("arch", ["advanced-2vc", "ideal", "simple-2vc"])
    def test_edf_serves_proportionally_to_weights(self, tiny_topology, arch):
        served = run_weighted(tiny_topology, arch)
        total = sum(served.values())
        assert total > 0.8  # victim link is kept busy
        for src, weight in WEIGHTS.items():
            share = served[src] / total
            assert share == pytest.approx(weight, rel=0.25), (src, served)

    @pytest.mark.parametrize("arch", ["advanced-2vc", "ideal"])
    def test_minimum_bandwidth_guarantee(self, tiny_topology, arch):
        """Each flow receives at least ~its weight of the link, despite
        the 2.7x oversubscription."""
        served = run_weighted(tiny_topology, arch)
        for src, weight in WEIGHTS.items():
            assert served[src] > 0.8 * weight

    def test_traditional_ignores_weights(self, tiny_topology):
        served = run_weighted(tiny_topology, "traditional-2vc")
        total = sum(served.values())
        assert total > 0.8
        # Round-robin + FIFO: all three get roughly equal service.
        shares = sorted(v / total for v in served.values())
        assert shares[-1] - shares[0] < 0.15
