"""Randomized whole-fabric fuzzing.

Hypothesis generates small random topologies (folded MINs and k-ary
n-trees), random flow sets, and random message patterns, runs them to
quiescence under a random architecture, and checks the invariants that
must hold for *any* configuration:

- every submitted packet is delivered exactly once (lossless, no dupes);
- per-flow FIFO delivery;
- all credit counters return to their initial values;
- deterministic replay: the same drawn scenario produces the same
  deliveries.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.architectures import ARCHITECTURES
from repro.core.flow import FlowKind
from repro.network.fabric import Fabric, FabricParams
from repro.network.topology import FatTreeSpec, build_fat_tree, build_folded_shuffle_min


@st.composite
def scenarios(draw):
    kind = draw(st.sampled_from(["min", "fattree"]))
    if kind == "min":
        leaves = draw(st.integers(2, 4))
        hosts = draw(st.integers(2, 4))
        spines = draw(st.integers(1, 4))
        topo = build_folded_shuffle_min(leaves, hosts, spines)
    else:
        arity = draw(st.integers(2, 3))
        levels = draw(st.integers(2, 3))
        topo = build_fat_tree(FatTreeSpec(arity, levels))
    n = topo.n_hosts
    arch = draw(st.sampled_from(sorted(ARCHITECTURES)))
    n_flows = draw(st.integers(1, 6))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 2))
        if dst >= src:
            dst += 1
        vc = draw(st.sampled_from([0, 1]))
        messages = draw(
            st.lists(
                st.tuples(st.integers(0, 50_000), st.integers(1, 10_000)),
                min_size=1,
                max_size=5,
            )
        )
        flows.append((src, dst, vc, messages))
    return topo, arch, flows


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenarios())
def test_random_fabrics_preserve_invariants(scenario):
    topo, arch, flows = scenario

    def run():
        fabric = Fabric(topo, ARCHITECTURES[arch], FabricParams())
        deliveries: list[tuple[int, int, int]] = []
        fabric.subscribe_delivery(
            lambda p, t: deliveries.append((p.flow_id, p.seq, t))
        )
        for src, dst, vc, messages in flows:
            flow = fabric.open_flow(
                src,
                dst,
                tclass="fuzz",
                kind=FlowKind.RATE,
                vc=vc,
                bw_bytes_per_ns=0.05,
            )
            for at, size in messages:
                fabric.engine.at(at, fabric.submit, flow, size)
        fabric.engine.run(max_events=5_000_000)
        return fabric, deliveries

    fabric, deliveries = run()

    # Lossless, exactly-once.
    submitted = sum(h.packets_submitted for h in fabric.hosts)
    assert len(deliveries) == submitted
    assert len({(f, s) for f, s, _ in deliveries}) == submitted

    # Per-flow FIFO.
    last: dict[int, int] = {}
    for flow_id, seq, _ in deliveries:
        assert seq > last.get(flow_id, -1)
        last[flow_id] = seq

    # Credits fully restored at quiescence.
    for link in fabric.links.values():
        assert link.channel.credits == list(link.channel.initial)

    # Determinism: replaying the same scenario reproduces the deliveries.
    _, again = run()
    assert again == deliveries
