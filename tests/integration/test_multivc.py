"""Multi-VC fabrics (the Section 6 counterfactual, functionally).

The paper argues a conventional switch could approach EDF's behaviour
only by "implementing many more VCs", which no real product affords.
These tests exercise the generalized VC plumbing: a 4-VC fabric with one
strict-priority channel per traffic class, under the conventional
(FIFO + round-robin) architecture.
"""

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.core.flow import FlowKind
from repro.network.fabric import Fabric, FabricParams
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.collectors import MetricsCollector
from repro.traffic.mix import TrafficMixConfig, build_mix
from repro.experiments.config import scaled_video_mix

#: one strict-priority VC per Table 1 class, latency-critical first
VC_MAP = {"control": 0, "multimedia": 1, "best-effort": 2, "background": 3}


def four_vc_mix(load: float) -> TrafficMixConfig:
    base = scaled_video_mix(load, 0.02)
    return TrafficMixConfig(
        load=base.load,
        video_fps=base.video_fps,
        video_target_latency_ns=base.video_target_latency_ns,
        video_stream_rate_bytes_per_ns=base.video_stream_rate_bytes_per_ns,
        vc_map=VC_MAP,
    )


@pytest.fixture(scope="module")
def four_vc_run():
    from repro.network.topology import build_folded_shuffle_min

    topo = build_folded_shuffle_min(4, 4, 4)
    fabric = Fabric(
        topo, ARCHITECTURES["traditional-2vc"], FabricParams(n_vcs=4)
    )
    collector = MetricsCollector(warmup_ns=1_100 * units.US)
    fabric.subscribe_delivery(collector.on_delivery)
    mix = build_mix(fabric, RandomStreams(4), four_vc_mix(1.0))
    mix.start()
    fabric.run(until=2_400 * units.US)
    collector.finalize(fabric.engine.now)
    return fabric, collector


class TestFourVCFabric:
    def test_classes_ride_their_assigned_vcs(self, four_vc_run):
        fabric, _ = four_vc_run
        seen = {}
        fabric.subscribe_delivery(
            lambda p, t: seen.setdefault(p.tclass, p.vc)
        )
        # re-run a moment to observe fresh deliveries
        fabric.run(until=fabric.engine.now + 50 * units.US)
        for tclass, vc in seen.items():
            assert VC_MAP[tclass] == vc

    def test_losslessness_with_four_vcs(self, four_vc_run):
        fabric, _ = four_vc_run
        submitted = sum(h.packets_submitted for h in fabric.hosts)
        received = sum(h.packets_received for h in fabric.hosts)
        queued = fabric.queued_in_hosts() + fabric.queued_in_switches()
        assert 0 <= submitted - received - queued <= len(fabric.links)

    def test_dedicated_vc_rescues_control_latency(self, four_vc_run):
        """With its own top-priority channel, even the conventional switch
        delivers control traffic quickly -- the 'many more VCs' fix."""
        _, collector = four_vc_run
        assert collector.get("control").message_latency.mean < 40 * units.US

    def test_strict_priority_starves_the_lowest_class(self, four_vc_run):
        """...but strict per-class priorities are a blunt instrument: the
        bottom class is starved under saturation instead of receiving a
        controlled weighted share (what EDF weights provide)."""
        _, collector = four_vc_run
        be = collector.throughput("best-effort")
        bg = collector.throughput("background")
        assert bg < 0.7 * be

    def test_video_unpaced_despite_own_vc(self, four_vc_run):
        """A dedicated VC isolates video from best-effort but cannot give
        it *constant* frame latency -- frames still arrive as fast as the
        network allows, spread by frame size, unlike the EDF pacing."""
        _, collector = four_vc_run
        target = round(10 * units.MS * 0.02)
        stats = collector.get("multimedia")
        assert stats.message_latency.mean < 0.8 * target  # early, not pinned


class TestVcValidation:
    def test_flow_vc_bounded_by_fabric(self, tiny_topology):
        fabric = Fabric(tiny_topology, ARCHITECTURES["advanced-2vc"], FabricParams(n_vcs=2))
        with pytest.raises(ValueError, match="2-VC fabric"):
            fabric.open_flow(0, 1, "x", kind=FlowKind.RATE, vc=3, bw_bytes_per_ns=0.1)

    def test_single_vc_fabric_works(self, tiny_topology):
        fabric = Fabric(
            tiny_topology, ARCHITECTURES["advanced-2vc"], FabricParams(n_vcs=1)
        )
        flow = fabric.open_flow(0, 9, "x", kind=FlowKind.CONTROL, vc=0)
        got = []
        fabric.subscribe_delivery(lambda p, t: got.append(p))
        fabric.submit(flow, 1000)
        fabric.run(until=100 * units.US)
        assert len(got) == 1

    def test_bad_vc_count(self):
        with pytest.raises(ValueError):
            FabricParams(n_vcs=0)
