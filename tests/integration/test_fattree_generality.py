"""Generality beyond the paper's 2-stage MIN: a 3-level fat-tree.

The paper's mechanisms never reference the topology (deadlines are
absolute, routing is source-based), so the qualitative results must
carry over to deeper networks.  This runs the Table 1 mix over a 3-level
2-ary tree (8 hosts, up to 5 switch hops) and re-checks the headline
claims end to end.
"""

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import scaled_video_mix
from repro.network.fabric import Fabric
from repro.network.topology import FatTreeSpec, build_fat_tree
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.collectors import MetricsCollector
from repro.traffic.mix import build_mix

WARMUP = 1_100 * units.US
END = 2_400 * units.US


@pytest.fixture(scope="module")
def fattree_runs():
    results = {}
    for arch in ("advanced-2vc", "traditional-2vc"):
        topo = build_fat_tree(FatTreeSpec(arity=2, levels=3))
        fabric = Fabric(topo, ARCHITECTURES[arch])
        collector = MetricsCollector(warmup_ns=WARMUP)
        fabric.subscribe_delivery(collector.on_delivery)
        mix = build_mix(fabric, RandomStreams(3), scaled_video_mix(0.9, 0.02))
        mix.start()
        fabric.run(until=END)
        collector.finalize(fabric.engine.now)
        results[arch] = (fabric, collector)
    return results


class TestFatTreeGenerality:
    def test_all_classes_flow(self, fattree_runs):
        _, collector = fattree_runs["advanced-2vc"]
        assert {"control", "multimedia", "best-effort", "background"} <= set(
            collector.classes
        )

    def test_edf_beats_traditional_on_control(self, fattree_runs):
        advanced = fattree_runs["advanced-2vc"][1].get("control").message_latency.mean
        traditional = (
            fattree_runs["traditional-2vc"][1].get("control").message_latency.mean
        )
        assert advanced < traditional

    def test_video_pinned_at_target(self, fattree_runs):
        target = round(10 * units.MS * 0.02)
        stats = fattree_runs["advanced-2vc"][1].get("multimedia")
        assert stats.message_latency.mean == pytest.approx(target, rel=0.25)

    def test_no_reordering_across_five_hops(self, fattree_runs):
        fabric, _ = fattree_runs["advanced-2vc"]
        # Conservation at minimum; sequence order was asserted by the
        # delivery hook in the invariants suite for MINs -- here check the
        # fabric drained sanely and nothing was lost in the deeper tree.
        submitted = sum(h.packets_submitted for h in fabric.hosts)
        received = sum(h.packets_received for h in fabric.hosts)
        queued = fabric.queued_in_hosts() + fabric.queued_in_switches()
        assert received > 0
        assert 0 <= submitted - received - queued <= len(fabric.links)
