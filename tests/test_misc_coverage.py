"""Small coverage gaps: default constructors, helper methods, examples."""

import runpy
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestBuildFabricDefaults:
    def test_paper_scale_default(self):
        from repro import build_fabric

        fabric = build_fabric()
        assert fabric.topology.n_hosts == 128
        assert len(fabric.switches) == 24
        assert fabric.params.bytes_per_ns == 1.0

    def test_explicit_topology(self, tiny_topology):
        from repro import build_fabric
        from repro.core.architectures import IDEAL

        fabric = build_fabric(IDEAL, topology=tiny_topology)
        assert fabric.topology is tiny_topology
        assert fabric.architecture is IDEAL


class TestRunResultHelpers:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.config import ExperimentConfig, scaled_video_mix
        from repro.experiments.runner import run_experiment

        return run_experiment(
            ExperimentConfig(
                architecture="simple-2vc",
                load=0.4,
                topology="tiny",
                warmup_ns=50_000,
                measure_ns=150_000,
                mix=scaled_video_mix(0.4, 0.02),
            )
        )

    def test_latency_helpers(self, result):
        assert result.mean_packet_latency("control") > 0
        assert result.mean_message_latency("control") > 0

    def test_unknown_class_offered_raises(self, result):
        # Typos in class names should fail loudly, not report 0.
        with pytest.raises(KeyError):
            result.offered("nonexistent-class")


class TestTrafficSourceBase:
    def test_offered_rate_zero_elapsed(self, make_fabric):
        from repro.traffic.cbr import CbrSource

        source = CbrSource(make_fabric(), 0, 1, 0.1)
        assert source.offered_bytes_per_ns(0) == 0.0


class TestReportEdgeCases:
    def test_bool_cells_left_aligned(self):
        from repro.stats.report import format_table

        text = format_table(["flag"], [[True], [False]])
        assert "True" in text and "False" in text


class TestQueueBaseDefaults:
    def test_unbounded_free_bytes_sentinel(self):
        from repro.core.queues import FifoQueue

        queue = FifoQueue(None)
        assert queue.free_bytes > 10**15

    def test_invalid_capacity(self):
        from repro.core.queues import FifoQueue

        with pytest.raises(ValueError):
            FifoQueue(0)


@pytest.mark.parametrize(
    "example",
    ["quickstart.py", "takeover_queue_anatomy.py", "video_streaming.py"],
)
def test_light_examples_run_clean(example, capsys):
    """The fast examples execute end to end without error.  (The heavier
    ones -- mixed_datacenter, trace_replay, evaluate_custom_design -- run
    ~1 minute each and are exercised manually / by CI nightlies.)"""
    path = REPO / "examples" / example
    saved_argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{example} printed nothing"
    assert "Traceback" not in out
