"""Shared fixtures: small fabrics, engines, and RNG streams."""

from __future__ import annotations

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.network.fabric import Fabric, FabricParams
from repro.network.topology import build_folded_shuffle_min
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(1234)


@pytest.fixture
def tiny_topology():
    """16 hosts, full bisection: 4 leaves x 4 hosts, 4 spines."""
    return build_folded_shuffle_min(4, 4, 4)


@pytest.fixture(params=sorted(ARCHITECTURES))
def architecture(request):
    """Parametrize a test over all four evaluated architectures."""
    return ARCHITECTURES[request.param]


@pytest.fixture
def make_fabric(tiny_topology):
    """Factory for a small fabric of a given architecture name."""

    def _make(arch: str = "advanced-2vc", **param_overrides) -> Fabric:
        params = FabricParams(**param_overrides) if param_overrides else FabricParams()
        return Fabric(tiny_topology, ARCHITECTURES[arch], params)

    return _make
