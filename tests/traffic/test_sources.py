"""Tests for the traffic sources (control, CBR, video, self-similar)."""

import random

import pytest

from repro.constants import VC_BEST_EFFORT, VC_REGULATED
from repro.sim import units
from repro.traffic.cbr import CbrSource
from repro.traffic.control import ControlSource
from repro.traffic.multimedia import VideoStream
from repro.traffic.selfsimilar import SelfSimilarSource


@pytest.fixture
def fabric(make_fabric):
    return make_fabric("advanced-2vc")


class TestCbr:
    def test_deterministic_period(self, fabric):
        source = CbrSource(fabric, 0, 5, 0.5, message_bytes=1000)
        source.start(at=0)
        fabric.run(until=10_000)
        # One message every 2000 ns: t=0, 2000, ..., 10000.
        assert source.messages_generated == 6

    def test_rate_calibration(self, fabric):
        source = CbrSource(fabric, 0, 5, 0.25, message_bytes=2048)
        source.start(at=0)
        fabric.run(until=1_000_000)
        assert source.offered_bytes_per_ns(1_000_000) == pytest.approx(0.25, rel=0.02)

    def test_stop(self, fabric):
        source = CbrSource(fabric, 0, 5, 0.5, message_bytes=1000)
        source.start(at=0)
        fabric.run(until=5_000)
        source.stop()
        count = source.messages_generated
        fabric.run(until=50_000)
        assert source.messages_generated == count

    def test_double_start_rejected(self, fabric):
        source = CbrSource(fabric, 0, 5, 0.5)
        source.start(at=0)
        with pytest.raises(RuntimeError):
            source.start(at=0)

    def test_invalid_source_host(self, fabric):
        with pytest.raises(ValueError):
            CbrSource(fabric, 99, 5, 0.5)


class TestControl:
    def test_rate_calibration(self, fabric):
        source = ControlSource(fabric, 0, 0.25, random.Random(1))
        source.start(at=0)
        fabric.run(until=2_000_000)
        assert source.offered_bytes_per_ns(2_000_000) == pytest.approx(0.25, rel=0.15)

    def test_sizes_within_table1_range(self, fabric):
        source = ControlSource(fabric, 0, 0.5, random.Random(2))
        sizes = []
        fabric.subscribe_delivery(lambda p, t: sizes.append(p.size))
        source.start(at=0)
        fabric.run(until=500_000)
        assert sizes
        assert all(1 <= s <= 2048 for s in sizes)

    def test_never_targets_self(self, fabric):
        source = ControlSource(fabric, 3, 0.5, random.Random(3))
        dsts = []
        fabric.subscribe_delivery(lambda p, t: dsts.append(p.dst))
        source.start(at=0)
        fabric.run(until=500_000)
        assert dsts
        assert 3 not in dsts

    def test_shared_virtual_clock_across_destinations(self, fabric):
        """All control flows of one host chain deadlines on one record."""
        source = ControlSource(fabric, 0, 0.5, random.Random(4))
        source.start(at=0)
        fabric.run(until=200_000)
        flows = list(source._flows.values())
        assert len(flows) > 1
        assert all(f.stamper is source.stamper for f in flows)

    def test_control_rides_regulated_vc(self, fabric):
        source = ControlSource(fabric, 0, 0.25, random.Random(5))
        vcs = set()
        fabric.subscribe_delivery(lambda p, t: vcs.add(p.vc))
        source.start(at=0)
        fabric.run(until=200_000)
        assert vcs == {VC_REGULATED}


class TestVideo:
    def test_frame_cadence(self, fabric):
        stream = VideoStream(
            fabric, 0, 5, random.Random(6),
            rate_bytes_per_ns=0.01, fps=1000.0, target_latency_ns=200_000,
        )
        stream.start(at=0)
        fabric.run(until=10_000_000)  # 10 ms = 10 frame periods at 1000 fps
        assert stream.frames_sent == 11  # t=0 through t=10ms inclusive

    def test_rate_calibration(self, fabric):
        stream = VideoStream(
            fabric, 0, 5, random.Random(7),
            rate_bytes_per_ns=0.02, fps=2000.0, target_latency_ns=100_000,
        )
        stream.start(at=0)
        fabric.run(until=50_000_000)
        rate = stream.offered_bytes_per_ns(50_000_000)
        assert rate == pytest.approx(0.02, rel=0.15)

    def test_reserves_bandwidth(self, fabric):
        VideoStream(fabric, 0, 5, random.Random(8), rate_bytes_per_ns=0.01)
        assert fabric.admission.reservation_count == 1

    def test_random_start_phase_within_one_period(self, fabric):
        stream = VideoStream(
            fabric, 0, 5, random.Random(9),
            rate_bytes_per_ns=0.01, fps=1000.0,
        )
        stream.start()
        fabric.run(until=1_000_000)  # one frame period
        assert stream.frames_sent >= 1

    def test_validation(self, fabric):
        with pytest.raises(ValueError):
            VideoStream(fabric, 0, 5, random.Random(0), rate_bytes_per_ns=0)
        with pytest.raises(ValueError):
            VideoStream(fabric, 0, 5, random.Random(0), fps=0)


class TestSelfSimilar:
    def test_compensating_rate_is_exact(self, fabric):
        source = SelfSimilarSource(fabric, 0, 0.25, random.Random(10))
        source.start(at=0)
        fabric.run(until=5_000_000)
        assert source.offered_bytes_per_ns(5_000_000) == pytest.approx(0.25, rel=0.05)

    def test_pareto_gap_mode_generates_heavy_tailed_gaps(self, fabric):
        """The alternative gap mode draws unbounded Pareto gaps: over many
        draws the max/median ratio far exceeds an exponential's."""
        source = SelfSimilarSource(
            fabric, 0, 0.25, random.Random(21), gap_mode="pareto"
        )
        gaps = sorted(
            source._emit() or 0.0  # _emit returns the next gap
            for _ in range(2000)
        )
        median = gaps[len(gaps) // 2]
        assert gaps[-1] / median > 10  # exponential would be ~7 at n=2000

    def test_rides_best_effort_vc(self, fabric):
        source = SelfSimilarSource(fabric, 0, 0.25, random.Random(11))
        vcs = set()
        fabric.subscribe_delivery(lambda p, t: vcs.add(p.vc))
        source.start(at=0)
        fabric.run(until=500_000)
        assert vcs == {VC_BEST_EFFORT}

    def test_no_reservation(self, fabric):
        SelfSimilarSource(fabric, 0, 0.25, random.Random(12))
        assert fabric.admission.reservation_count == 0

    def test_burst_sizes_within_table1_range(self, fabric):
        source = SelfSimilarSource(fabric, 0, 0.5, random.Random(13))
        source.start(at=0)
        fabric.run(until=1_000_000)
        # messages are segmented; reconstruct via generator accounting
        assert source.messages_generated > 0
        mean_burst = source.bytes_generated / source.messages_generated
        assert 128 <= mean_burst <= 102_400

    def test_shared_class_record(self, fabric):
        source = SelfSimilarSource(fabric, 0, 0.5, random.Random(14))
        source.start(at=0)
        fabric.run(until=2_000_000)
        flows = list(source._flows.values())
        assert len(flows) > 1
        assert all(f.stamper is source.stamper for f in flows)

    def test_bad_gap_mode(self, fabric):
        with pytest.raises(ValueError):
            SelfSimilarSource(fabric, 0, 0.25, random.Random(0), gap_mode="bogus")
