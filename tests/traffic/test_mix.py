"""Tests for the Table 1 workload composition."""

import pytest

from repro.sim.rng import RandomStreams
from repro.traffic.mix import CLASS_NAMES, TrafficMixConfig, build_mix


class TestConfig:
    def test_defaults_follow_table1(self):
        config = TrafficMixConfig()
        assert config.share_control == 0.25
        assert config.share_multimedia == 0.25
        assert config.share_best_effort == 0.25
        assert config.share_background == 0.25
        assert config.control_size_range == (128, 2048)
        assert config.burst_size_range == (128, 102_400)
        assert config.video_target_latency_ns == 10_000_000  # 10 ms

    def test_class_rate(self):
        config = TrafficMixConfig(load=0.8)
        assert config.class_rate("control", 1.0) == pytest.approx(0.2)

    def test_shares_must_not_exceed_one(self):
        with pytest.raises(ValueError):
            TrafficMixConfig(share_control=0.5, share_multimedia=0.6)

    def test_load_bounds(self):
        with pytest.raises(ValueError):
            TrafficMixConfig(load=0.0)
        with pytest.raises(ValueError):
            TrafficMixConfig(load=2.5)


class TestBuildMix:
    def test_every_host_gets_all_four_classes(self, make_fabric, streams):
        fabric = make_fabric()
        mix = build_mix(fabric, streams, TrafficMixConfig(load=0.5))
        n = fabric.topology.n_hosts
        assert len(mix.sources["control"]) == n
        assert len(mix.sources["best-effort"]) == n
        assert len(mix.sources["background"]) == n
        assert len(mix.sources["multimedia"]) >= n  # >= 1 stream per host

    def test_video_reservations_all_admitted(self, make_fabric, streams):
        """Balanced destination rotation keeps per-downlink video at its
        share, so admission never rejects the standard mix at load 1.0."""
        fabric = make_fabric()
        mix = build_mix(fabric, streams, TrafficMixConfig(load=1.0))
        assert fabric.admission.reservation_count == len(mix.sources["multimedia"])

    def test_video_destinations_balanced(self, make_fabric, streams):
        fabric = make_fabric()
        mix = build_mix(fabric, streams, TrafficMixConfig(load=1.0))
        received = {}
        for stream in mix.sources["multimedia"]:
            received[stream.dst] = received.get(stream.dst, 0) + 1
        counts = set(received.values())
        assert len(counts) == 1, f"unbalanced video destinations: {received}"

    def test_zero_share_skips_class(self, make_fabric, streams):
        fabric = make_fabric()
        mix = build_mix(
            fabric,
            streams,
            TrafficMixConfig(load=0.5, share_multimedia=0.0, share_background=0.0),
        )
        assert mix.sources["multimedia"] == []
        assert mix.sources["background"] == []
        assert len(mix.sources["control"]) == 16

    def test_best_effort_weights(self, make_fabric, streams):
        fabric = make_fabric()
        mix = build_mix(
            fabric,
            streams,
            TrafficMixConfig(load=0.5, weight_best_effort=2.0, weight_background=1.0),
        )
        be = mix.sources["best-effort"][0]
        bg = mix.sources["background"][0]
        assert be.deadline_bw == pytest.approx(2 * bg.deadline_bw)

    def test_offered_load_calibration(self, make_fabric, streams):
        """The realized offered load tracks the configured load."""
        fabric = make_fabric()
        config = TrafficMixConfig(
            load=0.5,
            # Compress video so the measurement window sees steady state.
            video_fps=2500.0,
            video_target_latency_ns=100_000,
            video_stream_rate_bytes_per_ns=0.15,
        )
        mix = build_mix(fabric, streams, config)
        mix.start()
        fabric.run(until=4_000_000)
        horizon = 4_000_000 * fabric.topology.n_hosts
        for tclass in CLASS_NAMES:
            offered = mix.offered_bytes(tclass) / horizon
            assert offered == pytest.approx(0.125, rel=0.25), tclass

    def test_start_stop(self, make_fabric, streams):
        fabric = make_fabric()
        mix = build_mix(fabric, streams, TrafficMixConfig(load=0.3))
        mix.start()
        fabric.run(until=200_000)
        mix.stop()
        generated = sum(s.messages_generated for s in mix.all_sources())
        fabric.run(until=2_000_000)
        assert sum(s.messages_generated for s in mix.all_sources()) == generated

    def test_needs_two_hosts(self, streams):
        from repro.core.architectures import ADVANCED_2VC
        from repro.network.fabric import Fabric
        from repro.network.topology import build_folded_shuffle_min

        topo = build_folded_shuffle_min(1, 1, 1)
        fabric = Fabric(topo, ADVANCED_2VC)
        with pytest.raises(ValueError):
            build_mix(fabric, streams, TrafficMixConfig(load=0.5))

    def test_determinism(self, make_fabric):
        totals = []
        for _ in range(2):
            fabric = make_fabric()
            mix = build_mix(fabric, RandomStreams(777), TrafficMixConfig(load=0.4))
            mix.start()
            fabric.run(until=500_000)
            totals.append(
                tuple(mix.offered_bytes(tclass) for tclass in CLASS_NAMES)
            )
        assert totals[0] == totals[1]
