"""Tests for the workload samplers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.distributions import BoundedPareto, GopFrameSizes, pareto_interarrival


class TestBoundedPareto:
    def test_samples_within_bounds(self):
        dist = BoundedPareto(1.3, 128, 102_400)
        rng = random.Random(1)
        for _ in range(2000):
            x = dist.sample(rng)
            assert 128 <= x <= 102_400

    def test_sample_int_within_bounds(self):
        dist = BoundedPareto(1.3, 128, 102_400)
        rng = random.Random(2)
        for _ in range(500):
            x = dist.sample_int(rng)
            assert isinstance(x, int)
            assert 128 <= x <= 102_400

    def test_empirical_mean_matches_analytic(self):
        dist = BoundedPareto(1.5, 100, 10_000)
        rng = random.Random(3)
        n = 200_000
        empirical = sum(dist.sample(rng) for _ in range(n)) / n
        assert empirical == pytest.approx(dist.mean, rel=0.03)

    def test_alpha_one_special_case(self):
        dist = BoundedPareto(1.0, 100, 10_000)
        rng = random.Random(4)
        n = 100_000
        empirical = sum(dist.sample(rng) for _ in range(n)) / n
        assert empirical == pytest.approx(dist.mean, rel=0.05)

    def test_heavier_tail_larger_mean(self):
        light = BoundedPareto(2.5, 100, 100_000).mean
        heavy = BoundedPareto(1.1, 100, 100_000).mean
        assert heavy > light

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(0, 1, 10)
        with pytest.raises(ValueError):
            BoundedPareto(1.5, 10, 10)
        with pytest.raises(ValueError):
            BoundedPareto(1.5, -5, 10)

    @settings(max_examples=50)
    @given(
        alpha=st.floats(0.5, 3.0),
        low=st.floats(1, 1000),
        ratio=st.floats(1.5, 1000),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_bounds_property(self, alpha, low, ratio, seed):
        dist = BoundedPareto(alpha, low, low * ratio)
        rng = random.Random(seed)
        x = dist.sample(rng)
        assert low <= x <= low * ratio
        assert dist.low <= dist.mean <= dist.high


class TestParetoInterarrival:
    def test_mean_calibration(self):
        rng = random.Random(5)
        n = 500_000
        mean = sum(pareto_interarrival(rng, 100.0, alpha=2.5) for _ in range(n)) / n
        assert mean == pytest.approx(100.0, rel=0.05)

    def test_minimum_is_scale(self):
        rng = random.Random(6)
        samples = [pareto_interarrival(rng, 100.0, alpha=2.0) for _ in range(1000)]
        assert min(samples) >= 100.0 * (2.0 - 1.0) / 2.0

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            pareto_interarrival(rng, 0.0)
        with pytest.raises(ValueError):
            pareto_interarrival(rng, 10.0, alpha=1.0)


class TestGopFrameSizes:
    def test_clipping(self):
        gen = GopFrameSizes(60_000, low=1024, high=122_880)
        rng = random.Random(7)
        for _ in range(200):
            size = gen.next_frame(rng)
            assert 1024 <= size <= 122_880

    def test_i_frames_bigger_than_b_frames_on_average(self):
        gen = GopFrameSizes(30_000, pattern="IB", sigma=0.1)
        rng = random.Random(8)
        i_sizes, b_sizes = [], []
        for _ in range(500):
            i_sizes.append(gen.next_frame(rng))
            b_sizes.append(gen.next_frame(rng))
        assert sum(i_sizes) / len(i_sizes) > 2 * sum(b_sizes) / len(b_sizes)

    def test_long_run_mean_near_target(self):
        # 30 KB mean keeps I frames under the cap, so clipping bias ~ 0.
        gen = GopFrameSizes(30_000, sigma=0.2)
        rng = random.Random(9)
        n = 60_000
        mean = sum(gen.next_frame(rng) for _ in range(n)) / n
        assert mean == pytest.approx(30_000, rel=0.05)

    def test_pattern_cycles(self):
        gen = GopFrameSizes(10_000, pattern="IPB")
        assert gen.frame_type == "I"
        rng = random.Random(10)
        gen.next_frame(rng)
        assert gen.frame_type == "P"
        gen.next_frame(rng)
        assert gen.frame_type == "B"
        gen.next_frame(rng)
        assert gen.frame_type == "I"

    def test_start_index(self):
        gen = GopFrameSizes(10_000, pattern="IPB", start_index=2)
        assert gen.frame_type == "B"

    def test_validation(self):
        with pytest.raises(ValueError):
            GopFrameSizes(0)
        with pytest.raises(ValueError):
            GopFrameSizes(1000, pattern="IXB")
        with pytest.raises(ValueError):
            GopFrameSizes(1000, pattern="")
        with pytest.raises(ValueError):
            GopFrameSizes(1000, low=100, high=100)
