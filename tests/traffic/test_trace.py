"""Tests for trace record/replay and real frame-size traces."""

import random

import pytest

from repro.sim.rng import RandomStreams
from repro.traffic.mix import TrafficMixConfig, build_mix
from repro.traffic.trace import (
    FrameSizeTrace,
    TraceRecorder,
    TraceReplaySource,
    load_trace,
    replay_all,
    video_stream_from_trace,
)


@pytest.fixture
def recorded(make_fabric, streams):
    """A short mixed-workload run with its trace."""
    fabric = make_fabric("advanced-2vc")
    recorder = TraceRecorder()
    recorder.attach(fabric)
    mix = build_mix(
        fabric,
        streams,
        TrafficMixConfig(load=0.4, share_multimedia=0.0),  # video rides long timescales
    )
    mix.start()
    fabric.run(until=300_000)
    recorder.detach()
    return fabric, recorder


class TestRecorder:
    def test_records_every_submission(self, recorded):
        fabric, recorder = recorded
        # One record per *message*: compare against generator accounting.
        total_msgs = sum(h.packets_submitted for h in fabric.hosts)
        assert len(recorder.records) > 0
        total_bytes = sum(r[4] for r in recorder.records)
        assert total_bytes == sum(h.bytes_submitted for h in fabric.hosts)

    def test_detach_restores_submit(self, recorded):
        fabric, recorder = recorded
        count = len(recorder.records)
        flow = fabric.open_flow(0, 1, "control", kind="control")
        fabric.submit(flow, 100)
        assert len(recorder.records) == count  # no longer recording

    def test_double_attach_rejected(self, make_fabric):
        recorder = TraceRecorder()
        recorder.attach(make_fabric())
        with pytest.raises(RuntimeError):
            recorder.attach(make_fabric())

    def test_save_and_load_roundtrip(self, recorded, tmp_path):
        _, recorder = recorded
        path = tmp_path / "trace.jsonl"
        recorder.save(path)
        loaded = load_trace(path)
        assert loaded == sorted(recorder.records, key=lambda r: r[0])

    def test_gzip_roundtrip(self, recorded, tmp_path):
        _, recorder = recorded
        path = tmp_path / "trace.jsonl.gz"
        recorder.save(path)
        assert load_trace(path) == sorted(recorder.records, key=lambda r: r[0])

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(path)


class TestReplay:
    def test_replay_reproduces_offered_traffic(self, recorded, make_fabric):
        _, recorder = recorded
        replay_fabric = make_fabric("advanced-2vc")
        sources = replay_all(replay_fabric, recorder.records)
        replay_fabric.run(until=400_000)
        recorded_bytes = sum(r[4] for r in recorder.records)
        replayed_bytes = sum(s.bytes_generated for s in sources)
        assert replayed_bytes == recorded_bytes

    def test_replay_preserves_timestamps(self, make_fabric):
        fabric = make_fabric()
        records = [
            (1_000, 0, 5, "control", 256),
            (5_000, 0, 7, "control", 512),
            (5_000, 0, 7, "best-effort", 300),
            (9_000, 0, 5, "control", 128),
        ]
        births = []
        fabric.subscribe_delivery(lambda p, t: births.append((p.birth, p.tclass)))
        source = TraceReplaySource(fabric, 0, records)
        source.start()
        fabric.run(until=100_000)
        assert sorted(set(b for b, _ in births)) == [1_000, 5_000, 9_000]

    def test_replay_filters_by_source_host(self, make_fabric):
        fabric = make_fabric()
        records = [
            (100, 0, 5, "control", 256),
            (100, 3, 5, "control", 999),
        ]
        source = TraceReplaySource(fabric, 0, records)
        source.start()
        fabric.run(until=50_000)
        assert source.bytes_generated == 256

    def test_identical_replay_across_architectures(self, recorded, make_fabric):
        """The point of tracing: two architectures see byte-identical
        offered traffic."""
        _, recorder = recorded
        offered = {}
        for arch in ("ideal", "traditional-2vc"):
            fabric = make_fabric(arch)
            submissions = []
            original = fabric.submit
            fabric.submit = lambda f, n, s=submissions, o=original: (s.append((fabric.engine.now, f.spec.src, f.spec.dst, n)), o(f, n))[1]
            replay_all(fabric, recorder.records)
            fabric.run(until=400_000)
            offered[arch] = submissions
        assert offered["ideal"] == offered["traditional-2vc"]


class TestFrameSizeTrace:
    def test_from_file_bytes(self, tmp_path):
        path = tmp_path / "video.txt"
        path.write_text("# comment\n1000\n2000\n\n3000\n")
        trace = FrameSizeTrace.from_file(path)
        assert trace.sizes == (1000, 2000, 3000)
        assert trace.mean == 2000

    def test_from_file_bits(self, tmp_path):
        path = tmp_path / "video.txt"
        path.write_text("8000\n16000\n")
        trace = FrameSizeTrace.from_file(path, unit="bits")
        assert trace.sizes == (1000, 2000)

    def test_multi_column_format(self, tmp_path):
        path = tmp_path / "video.dat"
        path.write_text("0 I 50000\n1 B 1500\n")
        trace = FrameSizeTrace.from_file(path)
        assert trace.sizes == (50000, 1500)

    def test_rate(self):
        trace = FrameSizeTrace((40_000, 80_000))
        assert trace.rate_bytes_per_ns(25.0) == pytest.approx(60_000 * 25 / 1e9)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            FrameSizeTrace.from_file(path)

    def test_bad_unit(self, tmp_path):
        path = tmp_path / "video.txt"
        path.write_text("100\n")
        with pytest.raises(ValueError):
            FrameSizeTrace.from_file(path, unit="nibbles")

    def test_video_stream_from_trace_sends_exact_sizes(self, make_fabric):
        fabric = make_fabric()
        trace = FrameSizeTrace((10_000, 20_000, 30_000))
        stream = video_stream_from_trace(
            fabric, 0, 9, trace, fps=1000.0, target_latency_ns=100_000
        )
        sent = []
        original = fabric.submit

        def spy(flow, nbytes):
            sent.append(nbytes)
            original(flow, nbytes)

        fabric.submit = spy
        stream.start(at=0)
        fabric.run(until=5_000_000)  # 5 frame periods
        assert sent[:3] == [10_000, 20_000, 30_000]
        assert sent[3] == 10_000  # cycles
