"""Tests for the generator-scripted traffic source."""

import pytest

from repro.core.flow import FlowKind
from repro.traffic.scripted import ScriptedSource


class TestScriptedSource:
    def test_steps_execute_at_scripted_times(self, make_fabric):
        fabric = make_fabric()
        births = []
        fabric.subscribe_delivery(lambda p, t: births.append((p.birth, p.dst, p.size)))

        def script():
            yield 1_000, 5, 256
            yield 2_000, 7, 512
            yield 0, 5, 128  # immediately after the previous step

        ScriptedSource(fabric, 0, script()).start()
        fabric.run(until=200_000)
        assert sorted(births) == [(1_000, 5, 256), (3_000, 5, 128), (3_000, 7, 512)]

    def test_start_at_offsets_script(self, make_fabric):
        fabric = make_fabric()
        births = []
        fabric.subscribe_delivery(lambda p, t: births.append(p.birth))

        def script():
            yield 100, 3, 64

        ScriptedSource(fabric, 0, script()).start(at=10_000)
        fabric.run(until=100_000)
        assert births == [10_100]

    def test_stop_kills_mid_script(self, make_fabric):
        fabric = make_fabric()
        count = []
        fabric.subscribe_delivery(lambda p, t: count.append(p))

        def endless():
            while True:
                yield 1_000, 1, 64

        source = ScriptedSource(fabric, 0, endless())
        source.start()
        fabric.run(until=10_500)
        source.stop()
        fabric.run(until=100_000)
        assert len(count) == 10
        assert not source.running

    def test_custom_flow_kwargs(self, make_fabric):
        fabric = make_fabric()
        vcs = []
        fabric.subscribe_delivery(lambda p, t: vcs.append(p.vc))

        def script():
            yield 10, 4, 100

        ScriptedSource(
            fabric,
            0,
            script(),
            tclass="bulk",
            flow_kwargs={"kind": FlowKind.RATE, "vc": 1, "bw_bytes_per_ns": 0.2},
        ).start()
        fabric.run(until=50_000)
        assert vcs == [1]

    def test_accounting(self, make_fabric):
        fabric = make_fabric()

        def script():
            yield 10, 1, 100
            yield 10, 2, 200

        source = ScriptedSource(fabric, 0, script())
        source.start()
        fabric.run(until=50_000)
        assert source.messages_generated == 2
        assert source.bytes_generated == 300

    def test_barrier_fanout_scenario(self, make_fabric):
        """The docstring's collective-communication pattern end to end."""
        fabric = make_fabric()
        arrivals_at_root = []
        fanout = []
        fabric.subscribe_delivery(
            lambda p, t: (arrivals_at_root if p.dst == 0 else fanout).append(p)
        )

        def worker(src):
            yield 1_000 * src, 0, 64  # skewed arrivals

        for src in range(1, 8):
            ScriptedSource(fabric, src, worker(src)).start()

        def fan(src=0):
            yield 20_000, 1, 1024
            for dst in range(2, 8):
                yield 500, dst, 1024

        ScriptedSource(fabric, 0, fan()).start()
        fabric.run(until=200_000)
        assert len(arrivals_at_root) == 7
        assert len(fanout) == 7

    def test_double_start_rejected(self, make_fabric):
        fabric = make_fabric()

        def script():
            yield 10, 1, 100

        source = ScriptedSource(fabric, 0, script())
        source.start()
        with pytest.raises(RuntimeError):
            source.start()
