"""Tests for fabric assembly and the flow-level API."""

import pytest

from repro.constants import VC_BEST_EFFORT, VC_REGULATED
from repro.core.admission import AdmissionError
from repro.core.flow import FlowKind
from repro.network.fabric import Fabric, FabricParams
from repro.network.topology import build_folded_shuffle_min


class TestConstruction:
    def test_all_links_wired(self, make_fabric):
        fabric = make_fabric()
        for link in fabric.links.values():
            assert link.sender is not None, f"{link} has no sender"
            assert link.receiver is not None, f"{link} has no receiver"

    def test_hosts_and_switches_counts(self, make_fabric):
        fabric = make_fabric()
        assert len(fabric.hosts) == 16
        assert len(fabric.switches) == 8

    def test_paper_defaults(self):
        params = FabricParams()
        assert params.bytes_per_ns == 1.0  # 8 Gb/s
        assert params.mtu == 2048
        assert params.buffer_bytes_per_vc == 8192
        assert params.eligible_offset_ns == 20_000

    def test_buffer_must_hold_an_mtu(self):
        with pytest.raises(ValueError):
            FabricParams(mtu=4096, buffer_bytes_per_vc=2048)


class TestOpenFlow:
    def test_regulated_flow_reserves_bandwidth(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 9, "multimedia", bw_bytes_per_ns=0.25)
        assert flow.path  # route fixed
        assert fabric.admission.reservation_count == 1
        assert flow.spec.vc == VC_REGULATED

    def test_admission_rejects_oversubscription(self, make_fabric):
        fabric = make_fabric()
        # Saturate host 0's injection link (every path shares it).
        fabric.open_flow(0, 9, "multimedia", bw_bytes_per_ns=0.7)
        fabric.open_flow(0, 10, "multimedia", bw_bytes_per_ns=0.3)
        with pytest.raises(AdmissionError):
            fabric.open_flow(0, 11, "multimedia", bw_bytes_per_ns=0.1)

    def test_control_flow_skips_reservation(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 9, "control", kind=FlowKind.CONTROL)
        assert fabric.admission.reservation_count == 0
        assert flow.spec.bw_bytes_per_ns == fabric.params.bytes_per_ns

    def test_best_effort_defaults_to_vc1(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 9, "best-effort", bw_bytes_per_ns=0.5)
        assert flow.spec.vc == VC_BEST_EFFORT
        assert fabric.admission.reservation_count == 0

    def test_path_matches_a_routing_candidate(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 9, "multimedia", bw_bytes_per_ns=0.1)
        candidates = {p.ports for p in fabric.routing.candidates(0, 9)}
        assert flow.path in candidates


class TestEndToEnd:
    @pytest.mark.parametrize(
        "arch", ["traditional-2vc", "ideal", "simple-2vc", "advanced-2vc"]
    )
    def test_message_crosses_fabric(self, make_fabric, arch):
        fabric = make_fabric(arch)
        flow = fabric.open_flow(0, 15, "control", kind=FlowKind.CONTROL)
        got = []
        fabric.subscribe_delivery(lambda p, t: got.append(p))
        fabric.submit(flow, 6000)
        fabric.run(until=100_000)
        assert len(got) == 3  # 2048+2048+1904
        assert all(p.deliver is not None for p in got)
        assert fabric.packets_in_flight() == 0

    def test_same_leaf_delivery(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 1, "control", kind=FlowKind.CONTROL)
        got = []
        fabric.subscribe_delivery(lambda p, t: got.append((p, t)))
        fabric.submit(flow, 1000)
        fabric.run(until=50_000)
        (pkt, when), = got
        # host->leaf->host: two serializations + two hop delays.
        assert when == 2 * 1000 + 2 * fabric.params.link_delay_ns

    def test_multiple_subscribers_all_notified(self, make_fabric):
        fabric = make_fabric()
        flow = fabric.open_flow(0, 5, "control", kind=FlowKind.CONTROL)
        a, b = [], []
        fabric.subscribe_delivery(lambda p, t: a.append(p))
        fabric.subscribe_delivery(lambda p, t: b.append(p))
        fabric.submit(flow, 100)
        fabric.run(until=50_000)
        assert len(a) == len(b) == 1

    def test_counters_balance(self, make_fabric):
        fabric = make_fabric()
        flows = [
            fabric.open_flow(i, (i + 5) % 16, "control", kind=FlowKind.CONTROL)
            for i in range(4)
        ]
        for flow in flows:
            fabric.submit(flow, 4000)
        fabric.run(until=200_000)
        submitted = sum(h.packets_submitted for h in fabric.hosts)
        received = sum(h.packets_received for h in fabric.hosts)
        assert submitted == received == 8
        assert fabric.queued_in_switches() == 0
        assert fabric.queued_in_hosts() == 0


class TestCustomParams:
    def test_slower_links_stretch_latency(self, tiny_topology):
        from repro.core.architectures import ARCHITECTURES

        fast = Fabric(tiny_topology, ARCHITECTURES["ideal"], FabricParams(link_gbps=8.0))
        slow = Fabric(tiny_topology, ARCHITECTURES["ideal"], FabricParams(link_gbps=4.0))
        results = {}
        for name, fabric in (("fast", fast), ("slow", slow)):
            flow = fabric.open_flow(0, 1, "control", kind=FlowKind.CONTROL)
            got = []
            fabric.subscribe_delivery(lambda p, t, g=got: g.append(t))
            fabric.submit(flow, 1000)
            fabric.run(until=100_000)
            results[name] = got[0]
        assert results["slow"] > results["fast"]

    def test_zero_link_delay_allowed(self, tiny_topology):
        from repro.core.architectures import ARCHITECTURES

        fabric = Fabric(
            tiny_topology, ARCHITECTURES["ideal"], FabricParams(link_delay_ns=0)
        )
        flow = fabric.open_flow(0, 1, "control", kind=FlowKind.CONTROL)
        got = []
        fabric.subscribe_delivery(lambda p, t: got.append(t))
        fabric.submit(flow, 1000)
        fabric.run(until=100_000)
        assert got == [2000]
