"""Tests for up*/down* fixed routing."""

import pytest

from repro.network.routing import RoutingTable, compute_updown_paths
from repro.network.topology import FatTreeSpec, build_fat_tree, build_folded_shuffle_min


@pytest.fixture
def topo():
    return build_folded_shuffle_min(4, 4, 4)  # 16 hosts


class TestPathEnumeration:
    def test_same_leaf_single_two_hop_path(self, topo):
        paths = compute_updown_paths(topo, 0, 1)  # both under sw0.0
        assert len(paths) == 1
        (path,) = paths
        assert path.nodes == ("h0", "sw0.0", "h1")
        assert path.hops == 1

    def test_cross_leaf_one_path_per_spine(self, topo):
        paths = compute_updown_paths(topo, 0, 15)
        assert len(paths) == 4  # 4 spines
        for path in paths:
            assert len(path.nodes) == 5  # h, leaf, spine, leaf, h
            assert path.nodes[0] == "h0" and path.nodes[-1] == "h15"

    def test_paths_are_minimal_up_down(self, topo):
        for path in compute_updown_paths(topo, 0, 12):
            levels = []
            for node in path.nodes[1:-1]:
                levels.append(topo.levels[node])
            # strictly up then strictly down: no valleys
            peak = levels.index(max(levels))
            assert levels[: peak + 1] == sorted(levels[: peak + 1])
            assert levels[peak:] == sorted(levels[peak:], reverse=True)

    def test_ports_follow_wiring(self, topo):
        for path in compute_updown_paths(topo, 0, 15):
            # Replay the source route and confirm we land on the dst host.
            node = path.nodes[1]  # first switch
            for hop, port in enumerate(path.ports):
                peer, _ = topo.peer(node, port)
                node = peer
            assert node == "h15"

    def test_links_include_endpoint_links(self, topo):
        (path,) = compute_updown_paths(topo, 0, 1)
        assert path.links[0] == ("h0", 0)
        assert path.links[-1][0] == "sw0.0"

    def test_self_pair_rejected(self, topo):
        with pytest.raises(ValueError):
            compute_updown_paths(topo, 3, 3)

    def test_deterministic_order(self, topo):
        first = compute_updown_paths(topo, 0, 15)
        second = compute_updown_paths(topo, 0, 15)
        assert [p.nodes for p in first] == [p.nodes for p in second]

    def test_all_pairs_reachable(self, topo):
        n = topo.n_hosts
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    assert compute_updown_paths(topo, src, dst)


class TestFatTreeRouting:
    def test_three_level_paths(self):
        topo = build_fat_tree(FatTreeSpec(arity=2, levels=3))
        paths = compute_updown_paths(topo, 0, 7)  # opposite halves: full ascent
        assert len(paths) == 4  # 2 choices per up hop, 2 hops up
        for path in paths:
            assert len(path.nodes) == 2 + 5  # hosts + 5 switches

    def test_sibling_hosts_short_path(self):
        topo = build_fat_tree(FatTreeSpec(arity=2, levels=3))
        paths = compute_updown_paths(topo, 0, 1)
        assert len(paths) == 1
        assert paths[0].hops == 1


class TestRoutingTable:
    def test_caching_returns_same_tuple(self, topo):
        table = RoutingTable(topo)
        assert table.candidates(0, 5) is table.candidates(0, 5)

    def test_callable_alias(self, topo):
        table = RoutingTable(topo)
        assert table(0, 5) == table.candidates(0, 5)

    def test_deadlock_freedom_no_up_after_down(self, topo):
        """up*/down*: once a path descends it never ascends again, which
        breaks every cyclic channel dependency in the MIN."""
        table = RoutingTable(topo)
        for src in range(topo.n_hosts):
            for dst in range(topo.n_hosts):
                if src == dst:
                    continue
                for path in table.candidates(src, dst):
                    switches = path.nodes[1:-1]
                    levels = [topo.levels[s] for s in switches]
                    descended = False
                    for a, b in zip(levels, levels[1:]):
                        if b < a:
                            descended = True
                        if b > a:
                            assert not descended, f"up after down in {path.nodes}"
