"""Property-based tests of the credit flow-control loop.

Hypothesis drives a link with arbitrary interleavings of transmissions
and credit returns and checks the conservation law the lossless fabric
depends on: credits held at the sender plus bytes granted-but-not-yet-
returned always equals the advertised buffer, and no interleaving can
coax the sender into overcommitting the receiver's buffer.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import CreditChannel, CreditError, Link
from repro.sim.engine import Engine
from tests.helpers import mkpkt

BUFFER = 8192


@st.composite
def credit_ops(draw):
    """A feasible operation schedule: sizes to send and when credits for
    them are returned, expressed as an interleaved op list."""
    n = draw(st.integers(1, 30))
    sizes = draw(st.lists(st.integers(1, 4096), min_size=n, max_size=n))
    # For each packet, a 'return' op is inserted somewhere after its send.
    ops: list[tuple[str, int]] = []
    outstanding: list[int] = []
    for size in sizes:
        ops.append(("send", size))
        outstanding.append(size)
        while outstanding and draw(st.booleans()):
            ops.append(("return", outstanding.pop(0)))
    for size in outstanding:
        ops.append(("return", size))
    return ops


class TestCreditChannelProperties:
    @settings(max_examples=300)
    @given(credit_ops())
    def test_conservation_and_no_overcommit(self, ops):
        channel = CreditChannel((BUFFER, BUFFER))
        granted = 0  # bytes sent whose credit has not come back
        for op, size in ops:
            if op == "send":
                if channel.can_send(0, size):
                    channel.consume(0, size)
                    granted += size
                else:
                    # The sender must be blocked exactly when the buffer
                    # cannot hold the packet on top of what is in flight.
                    assert granted + size > BUFFER
                    continue
            else:
                if granted >= size:
                    channel.replenish(0, size)
                    granted -= size
            # Conservation: credits + granted == buffer, always.
            assert channel.credits[0] + granted == BUFFER
            assert 0 <= channel.credits[0] <= BUFFER

    @settings(max_examples=200)
    @given(st.lists(st.integers(1, BUFFER), min_size=1, max_size=20))
    def test_over_return_always_detected(self, sizes):
        channel = CreditChannel((BUFFER, BUFFER))
        returned_without_send = False
        try:
            for size in sizes:
                channel.replenish(0, size)
                returned_without_send = True
        except CreditError:
            return  # detected, as required
        assert not returned_without_send or sum(sizes) == 0


class TestLinkSerialization:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(1, 2048), min_size=1, max_size=12))
    def test_back_to_back_packets_never_overlap(self, sizes):
        """Deliveries are spaced by at least each packet's serialization
        time: the link is a single channel, not a bus."""
        engine = Engine()
        deliveries: list[tuple[int, int]] = []  # (time, size)

        class Sink:
            def accept(self, pkt, link):
                deliveries.append((engine.now, pkt.size))
                link.return_credit(pkt.vc, pkt.size)

        to_send = [mkpkt(i, size=s) for i, s in enumerate(sizes)]

        class Driver:
            def pull(self, link):
                if to_send and link.can_send(to_send[0]):
                    link.transmit(to_send.pop(0))

        link = Link(
            engine,
            src="a",
            src_port=0,
            dst="b",
            dst_port=0,
            bytes_per_ns=1.0,
            prop_delay_ns=7,
            buffer_bytes_per_vc=(BUFFER, BUFFER),
        )
        link.receiver = Sink()
        driver = Driver()
        link.sender = driver
        driver.pull(link)
        engine.run_all()

        assert len(deliveries) == len(sizes)
        for (t_prev, _), (t_next, size_next) in zip(deliveries, deliveries[1:]):
            assert t_next - t_prev >= size_next
