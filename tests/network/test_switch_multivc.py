"""Direct unit tests of the switch with more than two VCs."""

import pytest

from repro.core.architectures import ADVANCED_2VC, TRADITIONAL_2VC
from repro.network.link import Link
from repro.network.switch import Switch
from tests.helpers import mkpkt


class Sink:
    def __init__(self):
        self.received = []

    def accept(self, pkt, link):
        self.received.append(pkt)
        link.return_credit(pkt.vc, pkt.size)


class NullSender:
    def pull(self, link):
        pass


def make_rig(engine, architecture, n_vcs, n_ports=3, buf=8192):
    switch = Switch(engine, "sw", n_ports, architecture, n_vcs=n_vcs)
    in_links, sinks = [], []
    for port in range(n_ports):
        in_link = Link(
            engine, src=f"s{port}", src_port=0, dst="sw", dst_port=port,
            bytes_per_ns=1.0, prop_delay_ns=0,
            buffer_bytes_per_vc=(buf,) * n_vcs,
        )
        in_link.sender = NullSender()
        switch.attach_in(port, in_link)
        in_links.append(in_link)
        sink = Sink()
        out_link = Link(
            engine, src="sw", src_port=port, dst=f"d{port}", dst_port=0,
            bytes_per_ns=1.0, prop_delay_ns=0,
            buffer_bytes_per_vc=(buf,) * n_vcs,
        )
        out_link.receiver = sink
        switch.attach_out(port, out_link)
        sinks.append(sink)
    return switch, in_links, sinks


def feed(switch, in_links, port, deadline, *, vc, out=0, size=256):
    pkt = mkpkt(deadline, vc=vc, size=size, path=(out,))
    in_links[port].channel.consume(vc, size)
    switch.accept(pkt, in_links[port])
    return pkt


class TestFourVCSwitch:
    def test_strict_priority_across_four_vcs(self, engine):
        switch, in_links, sinks = make_rig(engine, TRADITIONAL_2VC, n_vcs=4)
        # Occupy the wire, then queue one packet per VC in reverse priority.
        feed(switch, in_links, 0, 1, vc=3)
        for vc in (3, 2, 1, 0):
            feed(switch, in_links, 1, 10, vc=vc)
        engine.run_all()
        vcs_after_first = [p.vc for p in sinks[0].received][1:]
        assert vcs_after_first == [0, 1, 2, 3]

    def test_vcs_have_independent_credit_pools(self, engine):
        switch, in_links, sinks = make_rig(engine, ADVANCED_2VC, n_vcs=3, buf=2048)
        # Exhaust vc1's output credits by withholding its returns.
        held = []

        def hold_vc1(pkt, link):
            sinks[0].received.append(pkt)
            if pkt.vc != 1:
                link.return_credit(pkt.vc, pkt.size)
            else:
                held.append((link, pkt))

        sinks[0].accept = hold_vc1
        feed(switch, in_links, 0, 1, vc=1, size=2048)
        engine.run_all()
        # vc1 is now credit-dry; vc0 and vc2 still flow.
        feed(switch, in_links, 1, 2, vc=1, size=2048)  # stuck
        feed(switch, in_links, 2, 3, vc=0, size=512)
        feed(switch, in_links, 2, 4, vc=2, size=512)
        engine.run_all()
        delivered_vcs = sorted(p.vc for p in sinks[0].received)
        assert delivered_vcs == [0, 1, 2]  # the second vc1 packet is held

    def test_single_vc_switch(self, engine):
        switch, in_links, sinks = make_rig(engine, ADVANCED_2VC, n_vcs=1)
        feed(switch, in_links, 0, 5, vc=0)
        feed(switch, in_links, 1, 3, vc=0)
        engine.run_all()
        assert len(sinks[0].received) == 2

    def test_vc_out_of_range_rejected(self, engine):
        switch, in_links, _ = make_rig(engine, ADVANCED_2VC, n_vcs=2)
        with pytest.raises(IndexError):
            feed(switch, in_links, 0, 5, vc=3)

    def test_invalid_vc_count(self, engine):
        with pytest.raises(ValueError):
            Switch(engine, "sw", 4, ADVANCED_2VC, n_vcs=0)
