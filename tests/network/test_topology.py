"""Tests for the topology builders."""

import pytest

from repro.network.topology import (
    FatTreeSpec,
    TopologyError,
    build_fat_tree,
    build_folded_shuffle_min,
    paper_topology,
)


class TestFoldedMin:
    def test_paper_topology_dimensions(self):
        topo = paper_topology()
        assert topo.n_hosts == 128
        assert len(topo.switch_ids) == 16 + 8
        # Section 4.1: all switches implement 16 ports.
        for sw in topo.switch_ids:
            assert topo.radix(sw) == 16

    def test_small_instance_wiring(self):
        topo = build_folded_shuffle_min(4, 2, 3)
        assert topo.n_hosts == 8
        leaves = [s for s in topo.switch_ids if topo.levels[s] == 0]
        spines = [s for s in topo.switch_ids if topo.levels[s] == 1]
        assert len(leaves) == 4 and len(spines) == 3
        # Each leaf reaches every spine exactly once.
        for leaf in leaves:
            up_neighbors = [n for n in topo.neighbors(leaf) if n in spines]
            assert sorted(up_neighbors) == sorted(spines)

    def test_validation_passes(self):
        build_folded_shuffle_min(4, 4, 4).validate()

    def test_every_host_has_one_port(self):
        topo = build_folded_shuffle_min(2, 3, 2)
        for host in topo.host_ids:
            assert topo.radix(host) == 1

    def test_directed_links_count(self):
        # hosts*2 (up+down) + leaves*spines*2
        topo = build_folded_shuffle_min(4, 2, 3)
        links = list(topo.directed_links())
        assert len(links) == 8 * 2 + 4 * 3 * 2

    def test_port_to(self):
        topo = build_folded_shuffle_min(2, 2, 2)
        assert topo.port_to("h0", "sw0.0") == 0
        # host ports on the leaf come first, then uplinks
        assert topo.port_to("sw0.0", "h0") == 0
        assert topo.port_to("sw0.0", "sw1.1") == 3

    def test_port_to_unknown_neighbor(self):
        topo = build_folded_shuffle_min(2, 2, 2)
        with pytest.raises(TopologyError):
            topo.port_to("h0", "h1")

    def test_bad_parameters(self):
        with pytest.raises(TopologyError):
            build_folded_shuffle_min(0, 4, 4)

    def test_host_index_roundtrip(self):
        topo = build_folded_shuffle_min(2, 2, 2)
        for i, host in enumerate(topo.host_ids):
            assert topo.host_index(host) == i
            assert topo.host_id(i) == host


class TestFatTree:
    def test_two_level_dimensions(self):
        topo = build_fat_tree(FatTreeSpec(arity=4, levels=2))
        assert topo.n_hosts == 16
        assert len(topo.switch_ids) == 2 * 4  # two stages of k^(n-1)

    def test_three_level_dimensions(self):
        topo = build_fat_tree(FatTreeSpec(arity=2, levels=3))
        assert topo.n_hosts == 8
        assert len(topo.switch_ids) == 3 * 4
        topo.validate()

    def test_top_stage_has_only_down_ports(self):
        topo = build_fat_tree(FatTreeSpec(arity=3, levels=2))
        tops = [s for s in topo.switch_ids if topo.levels[s] == 1]
        for sw in tops:
            assert topo.radix(sw) == 3

    def test_every_port_is_wired(self):
        topo = build_fat_tree(FatTreeSpec(arity=2, levels=3))
        for node, plist in topo.ports.items():
            assert all(ref is not None for ref in plist), f"unwired port on {node}"

    def test_bad_spec(self):
        with pytest.raises(TopologyError):
            FatTreeSpec(arity=1, levels=2)
        with pytest.raises(TopologyError):
            FatTreeSpec(arity=4, levels=0)


class TestNetworkxView:
    def test_graph_is_connected_with_right_counts(self):
        import networkx as nx

        topo = build_folded_shuffle_min(4, 4, 4)
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 16 + 8
        assert nx.is_connected(graph)

    def test_fat_tree_graph_connected(self):
        import networkx as nx

        topo = build_fat_tree(FatTreeSpec(arity=2, levels=3))
        assert nx.is_connected(topo.to_networkx())

    def test_min_diameter(self):
        import networkx as nx

        # host -> leaf -> spine -> leaf -> host: diameter 4 in graph hops.
        topo = build_folded_shuffle_min(4, 4, 4)
        assert nx.diameter(topo.to_networkx()) == 4
