"""Property test: the host's injection order is online-EDF.

Section 3.2's cornerstone assumption is that traffic leaves each source
"in ascending order of deadline".  Precisely: whenever the NIC picks a
packet to inject, it picks the minimum-deadline packet among those
*currently ready* on that VC.  Hypothesis drives random flow sets and
submission schedules and checks the resulting injection sequence against
that online property (which is weaker than globally sorted -- a packet
that arrives after a worse one left cannot be un-sent, which is exactly
how order errors are born downstream).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import ADVANCED_2VC, TRADITIONAL_2VC
from repro.core.eligible import EligiblePolicy
from repro.core.flow import FlowKind, FlowRegistry
from repro.network.host import Host
from repro.network.link import Link
from repro.sim.engine import Engine


class Sink:
    def __init__(self):
        self.order = []  # (inject_time, vc, deadline, uid, birth)

    def accept(self, pkt, link):
        self.order.append((pkt.inject, pkt.vc, pkt.deadline, pkt.uid, pkt.birth))
        link.return_credit(pkt.vc, pkt.size)


@st.composite
def schedules(draw):
    n_flows = draw(st.integers(1, 4))
    flows = []
    for _ in range(n_flows):
        flows.append(
            dict(
                bw=draw(st.sampled_from([0.001, 0.01, 0.1, 1.0])),
                vc=draw(st.sampled_from([0, 1])),
            )
        )
    n_msgs = draw(st.integers(1, 20))
    messages = [
        (
            draw(st.integers(0, 50_000)),  # submit time
            draw(st.integers(0, n_flows - 1)),  # flow index
            draw(st.integers(64, 4096)),  # size
        )
        for _ in range(n_msgs)
    ]
    return flows, messages


def run_host(architecture, flows, messages):
    engine = Engine()
    host = Host(
        engine, "h0", 0, architecture, eligible_policy=EligiblePolicy(None), mtu=2048
    )
    sink = Sink()
    link = Link(
        engine,
        src="h0",
        src_port=0,
        dst="sink",
        dst_port=0,
        bytes_per_ns=1.0,
        prop_delay_ns=0,
        buffer_bytes_per_vc=(8192, 8192),
    )
    link.receiver = sink
    host.attach_out(link)
    registry = FlowRegistry()
    states = [
        registry.create(
            src=0, dst=1, tclass="t", kind=FlowKind.RATE,
            vc=f["vc"], bw_bytes_per_ns=f["bw"],
        )
        for f in flows
    ]
    for when, flow_index, size in messages:
        engine.at(when, host.submit_message, states[flow_index], size)
    engine.run_all()
    return sink.order


@settings(max_examples=150, deadline=None)
@given(schedules())
def test_edf_host_injects_online_minimum(batch):
    flows, messages = batch
    order = run_host(ADVANCED_2VC, flows, messages)
    # Online EDF: if q was already ready (born strictly before) when p was
    # injected, and q went out later on the same VC, then p had the better
    # (deadline, uid).  Strict: two submissions can share a timestamp, and
    # the first is injected onto the idle wire before the second exists.
    for i, (t_p, vc_p, d_p, uid_p, _) in enumerate(order):
        for t_q, vc_q, d_q, uid_q, birth_q in order[i + 1 :]:
            if vc_q != vc_p:
                continue
            if birth_q < t_p:
                assert (d_p, uid_p) <= (d_q, uid_q), (
                    f"injected deadline {d_p} while ready packet with "
                    f"deadline {d_q} waited"
                )


@settings(max_examples=100, deadline=None)
@given(schedules())
def test_traditional_host_injects_fifo_per_vc(batch):
    flows, messages = batch
    order = run_host(TRADITIONAL_2VC, flows, messages)
    for vc in (0, 1):
        uids = [uid for _, v, _, uid, _ in order if v == vc]
        # uid order == creation order == submission order per VC.
        assert uids == sorted(uids)


@settings(max_examples=100, deadline=None)
@given(schedules())
def test_vc0_never_waits_behind_vc1(batch):
    """Absolute priority at the source: when a VC0 packet was ready and the
    link picked anything, it picked VC0 (credits permitting -- unlimited
    here because the sink auto-credits)."""
    flows, messages = batch
    order = run_host(ADVANCED_2VC, flows, messages)
    for i, (t_p, vc_p, *_rest) in enumerate(order):
        if vc_p != 1:
            continue
        for t_q, vc_q, d_q, uid_q, birth_q in order[i + 1 :]:
            if vc_q == 0 and birth_q < t_p:
                raise AssertionError(
                    "best-effort packet injected while regulated traffic was ready"
                )
