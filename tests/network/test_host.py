"""Tests for the end-host NIC (Section 3.2's host organization)."""

import pytest

from repro.constants import VC_BEST_EFFORT, VC_REGULATED
from repro.core.architectures import ADVANCED_2VC, TRADITIONAL_2VC
from repro.core.eligible import EligiblePolicy
from repro.core.flow import FlowKind, FlowRegistry
from repro.network.host import Host
from repro.network.link import Link


class Sink:
    def __init__(self):
        self.received = []

    def accept(self, pkt, link):
        self.received.append((pkt, link.engine.now))
        link.return_credit(pkt.vc, pkt.size)


@pytest.fixture
def rig(engine):
    """A host wired to a sink over one link (plus a registry of flows)."""

    class Rig:
        def __init__(self, architecture=ADVANCED_2VC, eligible_offset=20_000):
            self.host = Host(
                engine,
                "h0",
                0,
                architecture,
                eligible_policy=EligiblePolicy(eligible_offset),
                mtu=2048,
            )
            self.sink = Sink()
            self.link = Link(
                engine,
                src="h0",
                src_port=0,
                dst="sink",
                dst_port=0,
                bytes_per_ns=1.0,
                prop_delay_ns=0,
                buffer_bytes_per_vc=(8192, 8192),
            )
            self.link.receiver = self.sink
            self.host.attach_out(self.link)
            self.registry = FlowRegistry()

        def flow(self, **kwargs):
            defaults = dict(
                src=0, dst=1, tclass="t", kind=FlowKind.RATE, bw_bytes_per_ns=1.0
            )
            defaults.update(kwargs)
            return self.registry.create(**defaults)

    return Rig


class TestSegmentation:
    def test_exact_multiple(self, rig):
        host = rig().host
        assert host.segment_sizes(4096) == [2048, 2048]

    def test_remainder(self, rig):
        host = rig().host
        assert host.segment_sizes(5000) == [2048, 2048, 904]

    def test_small_message_single_packet(self, rig):
        host = rig().host
        assert rig().host.segment_sizes(100) == [100]

    def test_invalid_size(self, rig):
        with pytest.raises(ValueError):
            rig().host.segment_sizes(0)


class TestStamping:
    def test_rate_flow_packets_carry_chained_deadlines(self, rig, engine):
        r = rig()
        flow = r.flow(bw_bytes_per_ns=0.5)
        pkts = r.host.submit_message(flow, 4096)
        assert [p.deadline for p in pkts] == [4096, 8192]

    def test_frame_flow_spreads_target_over_parts(self, rig, engine):
        r = rig()
        flow = r.flow(kind=FlowKind.FRAME, bw_bytes_per_ns=None, target_latency_ns=8000)
        pkts = r.host.submit_message(flow, 4096)
        assert [p.deadline for p in pkts] == [4000, 8000]

    def test_message_metadata(self, rig):
        r = rig()
        flow = r.flow()
        pkts = r.host.submit_message(flow, 5000)
        assert [p.msg_seq for p in pkts] == [0, 1, 2]
        assert all(p.msg_parts == 3 for p in pkts)
        assert len({p.msg_id for p in pkts}) == 1
        again = r.host.submit_message(flow, 100)
        assert again[0].msg_id != pkts[0].msg_id

    def test_wrong_host_rejected(self, rig):
        r = rig()
        flow = r.flow(src=3, dst=1)
        with pytest.raises(ValueError):
            r.host.submit_message(flow, 100)

    def test_sequence_numbers_monotone_per_flow(self, rig):
        r = rig()
        flow = r.flow()
        a = r.host.submit_message(flow, 2048)
        b = r.host.submit_message(flow, 2048)
        assert b[0].seq == a[0].seq + 1


class TestEligibleTime:
    def test_smoothed_packet_held_until_eligible(self, rig, engine):
        r = rig(eligible_offset=1000)
        flow = r.flow(kind=FlowKind.RATE, bw_bytes_per_ns=0.01, smoothing=True)
        # deadline = 100/0.01 = 10_000; eligible = 9_000.
        r.host.submit_message(flow, 100)
        engine.run(until=8_999)
        assert r.sink.received == []
        assert r.host.pending_packets() == 1
        engine.run(until=9_200)
        assert len(r.sink.received) == 1
        assert r.sink.received[0][1] >= 9_000

    def test_unsmoothed_flow_injects_immediately(self, rig, engine):
        r = rig(eligible_offset=1000)
        flow = r.flow(bw_bytes_per_ns=0.01, smoothing=False)
        r.host.submit_message(flow, 100)
        engine.run_all()
        assert r.sink.received[0][1] == 100  # just serialization

    def test_traditional_host_ignores_smoothing(self, rig, engine):
        r = rig(architecture=TRADITIONAL_2VC, eligible_offset=1000)
        flow = r.flow(bw_bytes_per_ns=0.01, smoothing=True)
        r.host.submit_message(flow, 100)
        engine.run_all()
        assert r.sink.received[0][1] == 100

    def test_multiple_pending_release_in_eligible_order(self, rig, engine):
        r = rig(eligible_offset=0)  # hold until the deadline itself
        slow = r.flow(bw_bytes_per_ns=0.001, smoothing=True)  # D = 100_000
        fast = r.flow(bw_bytes_per_ns=0.01, smoothing=True)  # D = 10_000
        r.host.submit_message(slow, 100)
        r.host.submit_message(fast, 100)
        engine.run_all()
        deadlines = [p.deadline for p, _ in r.sink.received]
        assert deadlines == sorted(deadlines)


class TestInjectionOrder:
    def test_edf_host_injects_by_deadline(self, rig, engine):
        r = rig()
        late = r.flow(bw_bytes_per_ns=0.001)  # huge deadline
        soon = r.flow(bw_bytes_per_ns=1.0)
        # Block the link so both are queued when it frees.
        blocker = r.flow(bw_bytes_per_ns=1.0)
        r.host.submit_message(blocker, 2048)
        r.host.submit_message(late, 2048)
        r.host.submit_message(soon, 2048)
        engine.run_all()
        flows = [p.flow_id for p, _ in r.sink.received]
        assert flows == [blocker.spec.flow_id, soon.spec.flow_id, late.spec.flow_id]

    def test_traditional_host_injects_fifo(self, rig, engine):
        r = rig(architecture=TRADITIONAL_2VC)
        late = r.flow(bw_bytes_per_ns=0.001)
        soon = r.flow(bw_bytes_per_ns=1.0)
        blocker = r.flow(bw_bytes_per_ns=1.0)
        r.host.submit_message(blocker, 2048)
        r.host.submit_message(late, 2048)
        r.host.submit_message(soon, 2048)
        engine.run_all()
        flows = [p.flow_id for p, _ in r.sink.received]
        assert flows == [blocker.spec.flow_id, late.spec.flow_id, soon.spec.flow_id]

    def test_regulated_beats_best_effort(self, rig, engine):
        r = rig()
        best_effort = r.flow(vc=VC_BEST_EFFORT, bw_bytes_per_ns=1.0)
        regulated = r.flow(vc=VC_REGULATED, bw_bytes_per_ns=0.0001)  # late deadline
        blocker = r.flow(bw_bytes_per_ns=1.0)
        r.host.submit_message(blocker, 2048)
        r.host.submit_message(best_effort, 2048)
        r.host.submit_message(regulated, 2048)
        engine.run_all()
        vcs = [p.vc for p, _ in r.sink.received]
        assert vcs == [0, 0, 1]  # regulated first despite its far deadline

    def test_best_effort_flows_while_vc0_credit_blocked(self, rig, engine):
        r = rig()
        regulated = r.flow(vc=VC_REGULATED, bw_bytes_per_ns=1.0)
        best_effort = r.flow(vc=VC_BEST_EFFORT, bw_bytes_per_ns=1.0)
        # Exhaust VC0 credits: sink in this rig returns credits, so consume
        # them manually to simulate a congested downstream VC0 buffer.
        r.link.channel.consume(0, 8192)
        r.host.submit_message(regulated, 2048)
        r.host.submit_message(best_effort, 2048)
        engine.run_all()
        vcs = [p.vc for p, _ in r.sink.received]
        assert vcs == [1]  # VC1 used the wire; VC0 still waiting
        assert r.host.ready_packets(VC_REGULATED) == 1


class TestReceiveSide:
    def test_delivery_callback_and_counters(self, rig, engine):
        r = rig()
        deliveries = []
        dst_host = Host(
            engine, "h1", 1, ADVANCED_2VC, on_delivery=lambda p, t: deliveries.append(t)
        )
        back_link = Link(
            engine,
            src="x",
            src_port=0,
            dst="h1",
            dst_port=0,
            bytes_per_ns=1.0,
            prop_delay_ns=0,
            buffer_bytes_per_vc=(8192, 8192),
        )
        dst_host.attach_in(back_link)
        flow = r.flow(dst=1)
        pkt = r.host.submit_message(flow, 100)[0]
        back_link.channel.consume(0, 100)
        back_link.transmit(pkt)
        engine.run_all()
        assert deliveries
        assert pkt.deliver is not None
        assert dst_host.packets_received == 1

    def test_misrouted_packet_rejected(self, rig, engine):
        r = rig()
        wrong = Host(engine, "h9", 9, ADVANCED_2VC)
        link = Link(
            engine,
            src="x",
            src_port=0,
            dst="h9",
            dst_port=0,
            bytes_per_ns=1.0,
            prop_delay_ns=0,
            buffer_bytes_per_vc=(8192, 8192),
        )
        wrong.attach_in(link)
        flow = r.flow(dst=1)  # destined to host 1, not 9
        pkt = r.host.submit_message(flow, 100)[0]
        with pytest.raises(ValueError):
            wrong.accept(pkt, link)
