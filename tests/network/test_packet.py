"""Tests for the packet header model."""

import pytest

from repro.network.packet import Packet, PacketFactory, VC_BEST_EFFORT, VC_REGULATED
from tests.helpers import mkpkt


class TestConstruction:
    def test_uids_are_globally_unique_and_increasing(self):
        a, b, c = mkpkt(1), mkpkt(1), mkpkt(1)
        assert a.uid < b.uid < c.uid

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            mkpkt(1, size=0)

    def test_invalid_vc(self):
        with pytest.raises(ValueError):
            mkpkt(1, vc=-1)
        mkpkt(1, vc=3)  # multi-VC fabrics allow higher indices

    def test_vc_constants(self):
        assert VC_REGULATED == 0
        assert VC_BEST_EFFORT == 1

    def test_defaults(self):
        pkt = mkpkt(42)
        assert pkt.hop == 0
        assert pkt.inject is None
        assert pkt.deliver is None
        assert pkt.msg_parts == 1


def _mint(factory, **overrides):
    fields = dict(
        flow_id=1, seq=0, tclass="control", vc=0, src=0, dst=1,
        size=64, deadline=100, path=(0,),
    )
    fields.update(overrides)
    return factory.mint(**fields)


class TestPacketFactory:
    def test_uids_start_at_one_per_factory(self):
        # Per-factory minting is what makes uid streams reproducible:
        # the old module-global counter leaked across runs in a process.
        a = PacketFactory()
        b = PacketFactory()
        assert [_mint(a).uid, _mint(a).uid] == [1, 2]
        assert _mint(b).uid == 1

    def test_pooled_instance_is_reinitialized(self):
        factory = PacketFactory(pooling=True)
        first = _mint(factory, size=64, deadline=10)
        first.hop = 3
        factory.recycle(first)
        second = _mint(factory, size=128, deadline=20)
        assert second is first  # storage reused ...
        assert second.uid == 2  # ... identity is not
        assert second.size == 128
        assert second.deadline == 20
        assert second.hop == 0

    def test_pooling_off_never_retains(self):
        factory = PacketFactory()
        pkt = _mint(factory)
        factory.recycle(pkt)
        assert factory.pooled == 0
        assert _mint(factory) is not pkt

    def test_free_list_is_conserved_across_mint_recycle_cycles(self):
        # The SIM503 lint discipline (every mint paired with a recycle)
        # has this runtime counterpart: recycling everything that was
        # minted returns every storage object to the free list, and a
        # second generation reuses exactly those objects -- the pool
        # neither leaks storage nor invents new allocations.
        factory = PacketFactory(pooling=True)
        first_gen = [_mint(factory) for _ in range(8)]
        storage = {id(p) for p in first_gen}
        for pkt in first_gen:
            factory.recycle(pkt)
        assert factory.pooled == 8
        second_gen = [_mint(factory) for _ in range(8)]
        assert factory.pooled == 0
        assert {id(p) for p in second_gen} == storage
        for pkt in second_gen:
            factory.recycle(pkt)
        assert factory.pooled == 8  # conserved, not grown
        assert factory.uids_minted == 16  # uids stay per-logical-packet

    def test_explicit_uid_bypasses_global_counter(self):
        pkt = mkpkt(1)
        explicit = Packet(
            uid=99, flow_id=1, seq=0, tclass="control", vc=0, src=0, dst=1,
            size=64, deadline=100, path=(0,),
        )
        assert explicit.uid == 99
        # The module-global fallback stream is untouched by explicit uids.
        assert mkpkt(1).uid == pkt.uid + 1


class TestSourceRouting:
    def test_next_output_port_follows_path(self):
        pkt = mkpkt(1, path=(4, 2, 7))
        assert pkt.next_output_port() == 4
        pkt.hop = 1
        assert pkt.next_output_port() == 2
        pkt.hop = 2
        assert pkt.next_output_port() == 7

    def test_exhausted_path_raises(self):
        pkt = mkpkt(1, path=(4,))
        pkt.hop = 1
        with pytest.raises(IndexError):
            pkt.next_output_port()
