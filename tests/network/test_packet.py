"""Tests for the packet header model."""

import pytest

from repro.network.packet import Packet, VC_BEST_EFFORT, VC_REGULATED
from tests.helpers import mkpkt


class TestConstruction:
    def test_uids_are_globally_unique_and_increasing(self):
        a, b, c = mkpkt(1), mkpkt(1), mkpkt(1)
        assert a.uid < b.uid < c.uid

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            mkpkt(1, size=0)

    def test_invalid_vc(self):
        with pytest.raises(ValueError):
            mkpkt(1, vc=-1)
        mkpkt(1, vc=3)  # multi-VC fabrics allow higher indices

    def test_vc_constants(self):
        assert VC_REGULATED == 0
        assert VC_BEST_EFFORT == 1

    def test_defaults(self):
        pkt = mkpkt(42)
        assert pkt.hop == 0
        assert pkt.inject is None
        assert pkt.deliver is None
        assert pkt.msg_parts == 1


class TestSourceRouting:
    def test_next_output_port_follows_path(self):
        pkt = mkpkt(1, path=(4, 2, 7))
        assert pkt.next_output_port() == 4
        pkt.hop = 1
        assert pkt.next_output_port() == 2
        pkt.hop = 2
        assert pkt.next_output_port() == 7

    def test_exhausted_path_raises(self):
        pkt = mkpkt(1, path=(4,))
        pkt.hop = 1
        with pytest.raises(IndexError):
            pkt.next_output_port()
