"""Tests for links and credit-based flow control."""

import pytest

from repro.network.link import CreditChannel, CreditError, Link
from tests.helpers import mkpkt


class Sink:
    """Records deliveries; optionally returns credits immediately."""

    def __init__(self, auto_credit=False):
        self.received = []
        self.auto_credit = auto_credit

    def accept(self, pkt, link):
        self.received.append((pkt, link.engine.now))
        if self.auto_credit:
            link.return_credit(pkt.vc, pkt.size)


class Puller:
    def __init__(self):
        self.pulls = 0

    def pull(self, link):
        self.pulls += 1


def make_link(engine, *, bw=1.0, prop=20, buf=(8192, 8192)):
    return Link(
        engine,
        src="a",
        src_port=0,
        dst="b",
        dst_port=1,
        bytes_per_ns=bw,
        prop_delay_ns=prop,
        buffer_bytes_per_vc=buf,
    )


class TestCreditChannel:
    def test_initial_credits_equal_buffer(self):
        ch = CreditChannel((8192, 4096))
        assert ch.credits == [8192, 4096]

    def test_consume_and_replenish(self):
        ch = CreditChannel((1000, 1000))
        ch.consume(0, 600)
        assert ch.can_send(0, 400)
        assert not ch.can_send(0, 401)
        ch.replenish(0, 600)
        assert ch.credits[0] == 1000

    def test_consume_without_credit_raises(self):
        ch = CreditChannel((100, 100))
        with pytest.raises(CreditError):
            ch.consume(0, 101)

    def test_over_replenish_raises(self):
        ch = CreditChannel((100, 100))
        with pytest.raises(CreditError):
            ch.replenish(0, 1)

    def test_vcs_are_independent(self):
        ch = CreditChannel((100, 100))
        ch.consume(0, 100)
        assert ch.can_send(1, 100)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CreditChannel(())
        with pytest.raises(ValueError):
            CreditChannel((100, 0))

    def test_multi_vc_channels(self):
        ch = CreditChannel((100, 200, 300, 400))
        ch.consume(3, 400)
        assert ch.can_send(2, 300)
        assert not ch.can_send(3, 1)


class TestTransmission:
    def test_delivery_after_serialization_plus_propagation(self, engine):
        link = make_link(engine, bw=1.0, prop=20)
        sink = Sink()
        link.receiver = sink
        pkt = mkpkt(1, size=2048)
        link.transmit(pkt)
        engine.run_all()
        assert sink.received[0][1] == 2048 + 20

    def test_busy_during_serialization(self, engine):
        link = make_link(engine)
        link.receiver = Sink()
        link.transmit(mkpkt(1, size=1000))
        assert link.busy
        engine.run(until=999)
        assert link.busy
        engine.run(until=1000)
        assert not link.busy

    def test_transmit_while_busy_raises(self, engine):
        link = make_link(engine)
        link.receiver = Sink()
        link.transmit(mkpkt(1, size=1000))
        with pytest.raises(CreditError):
            link.transmit(mkpkt(2, size=100))

    def test_transmit_consumes_credits(self, engine):
        link = make_link(engine, buf=(4096, 4096))
        link.receiver = Sink()
        link.transmit(mkpkt(1, size=1500))
        assert link.channel.credits[0] == 4096 - 1500

    def test_sender_pulled_when_link_frees(self, engine):
        link = make_link(engine)
        link.receiver = Sink()
        puller = Puller()
        link.sender = puller
        link.transmit(mkpkt(1, size=100))
        engine.run_all()
        assert puller.pulls == 1

    def test_counters(self, engine):
        link = make_link(engine)
        link.receiver = Sink()
        link.transmit(mkpkt(1, size=100))
        engine.run_all()
        link.transmit(mkpkt(2, size=200))
        engine.run_all()
        assert link.packets_carried == 2
        assert link.bytes_carried == 300

    def test_half_rate_link(self, engine):
        link = make_link(engine, bw=0.5, prop=0)
        sink = Sink()
        link.receiver = sink
        link.transmit(mkpkt(1, size=100))
        engine.run_all()
        assert sink.received[0][1] == 200


class TestCreditReturn:
    def test_credit_arrives_after_propagation(self, engine):
        link = make_link(engine, prop=50, buf=(1000, 1000))
        link.receiver = Sink()
        link.transmit(mkpkt(1, size=1000))
        engine.run_all()
        assert link.channel.credits[0] == 0
        link.return_credit(0, 1000)
        engine.run(until=engine.now + 49)
        assert link.channel.credits[0] == 0
        engine.run(until=engine.now + 1)
        assert link.channel.credits[0] == 1000

    def test_sender_pulled_on_credit_arrival(self, engine):
        link = make_link(engine, prop=10)
        link.receiver = Sink()
        puller = Puller()
        link.transmit(mkpkt(1, size=64))
        engine.run_all()
        link.sender = puller
        link.return_credit(0, 64)
        engine.run_all()
        assert puller.pulls == 1

    def test_stop_and_wait_throughput_with_auto_credit(self, engine):
        """With an auto-crediting sink, a saturating sender achieves full
        link utilization: N back-to-back MTUs take N serializations."""
        link = make_link(engine, prop=10, buf=(8192, 8192))
        sink = Sink(auto_credit=True)
        link.receiver = sink

        to_send = [mkpkt(i, size=2048) for i in range(8)]

        class Driver:
            def pull(self, l):
                if to_send and l.can_send(to_send[0]):
                    l.transmit(to_send.pop(0))

        driver = Driver()
        link.sender = driver
        driver.pull(link)
        engine.run_all()
        assert len(sink.received) == 8
        # 4-packet buffer, credits return promptly: the wire never idles.
        last = sink.received[-1][1]
        assert last == 8 * 2048 + 10  # pure pipelining + final propagation


class TestValidation:
    def test_negative_propagation_rejected(self, engine):
        with pytest.raises(ValueError):
            make_link(engine, prop=-1)

    def test_link_id(self, engine):
        assert make_link(engine).link_id == ("a", 0)
