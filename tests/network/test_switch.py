"""Direct unit tests of the switch's arbitration and credit discipline."""

import pytest

from repro.core.architectures import (
    ADVANCED_2VC,
    IDEAL,
    SIMPLE_2VC,
    TRADITIONAL_2VC,
)
from repro.network.link import Link
from repro.network.switch import Switch
from tests.helpers import mkpkt


class NullSender:
    def pull(self, link):
        pass


class Sink:
    """Endpoint that consumes instantly and returns credits."""

    def __init__(self, auto_credit=True):
        self.received = []
        self.auto_credit = auto_credit
        self.held = []  # (link, vc, size) credits withheld when not auto

    def accept(self, pkt, link):
        self.received.append((pkt, link.engine.now))
        if self.auto_credit:
            link.return_credit(pkt.vc, pkt.size)
        else:
            self.held.append((link, pkt.vc, pkt.size))

    def release_credits(self):
        for link, vc, size in self.held:
            link.return_credit(vc, size)
        self.held.clear()


class SwitchRig:
    """A single switch with stub feeders on inputs and sinks on outputs."""

    def __init__(self, engine, architecture, n_ports=4, buf=8192, prop=0):
        self.engine = engine
        self.switch = Switch(engine, "sw", n_ports, architecture)
        self.in_links = []
        self.sinks = []
        self.out_links = []
        for port in range(n_ports):
            in_link = Link(
                engine,
                src=f"src{port}",
                src_port=0,
                dst="sw",
                dst_port=port,
                bytes_per_ns=1.0,
                prop_delay_ns=prop,
                buffer_bytes_per_vc=(buf, buf),
            )
            in_link.sender = NullSender()
            self.switch.attach_in(port, in_link)
            self.in_links.append(in_link)

            sink = Sink()
            out_link = Link(
                engine,
                src="sw",
                src_port=port,
                dst=f"dst{port}",
                dst_port=0,
                bytes_per_ns=1.0,
                prop_delay_ns=prop,
                buffer_bytes_per_vc=(buf, buf),
            )
            out_link.receiver = sink
            self.switch.attach_out(port, out_link)
            self.sinks.append(sink)
            self.out_links.append(out_link)

    def feed(self, in_port, deadline, *, out_port=0, size=256, vc=0, **kw):
        """Inject a packet into an input port (bypassing wire timing).

        Consumes the in-link's credit exactly as a real upstream sender
        would, so the switch's credit return balances.
        """
        pkt = mkpkt(deadline, size=size, vc=vc, path=(out_port,), **kw)
        self.in_links[in_port].channel.consume(vc, size)
        self.switch.accept(pkt, self.in_links[in_port])
        return pkt

    def departures(self, out_port=0):
        return [p.deadline for p, _ in self.sinks[out_port].received]


class TestEDFArbitration:
    def test_lowest_deadline_head_wins_across_inputs(self, engine):
        rig = SwitchRig(engine, IDEAL)
        # The first packet grabs the idle wire immediately (work
        # conservation); the contenders arrive while it serializes.
        rig.feed(3, 1, out_port=0)
        rig.feed(0, 300)
        rig.feed(1, 100)
        rig.feed(2, 200)
        engine.run_all()
        assert rig.departures() == [1, 100, 200, 300]

    def test_simple_fifo_suffers_order_error(self, engine):
        """A high-deadline packet at a FIFO head blocks a later low-deadline
        arrival on the same input: the Section 3.4 order error."""
        rig = SwitchRig(engine, SIMPLE_2VC)
        rig.feed(0, 500)  # arrives first, heads the input FIFO
        rig.feed(0, 10)  # stuck behind it
        rig.feed(1, 100)
        engine.run_all()
        # 500 transmits first (it was the head when arbitration ran),
        # then 100 beats the still-queued 10's position? No -- 10 is still
        # behind nothing now, but 100 is the other input's head with a
        # larger uid... deadlines decide: 10 < 100.
        assert rig.departures()[0] == 500
        assert set(rig.departures()) == {500, 10, 100}

    def test_takeover_queue_avoids_the_order_error(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        first = rig.feed(0, 500)
        # The switch starts transmitting 500 immediately (idle link), so
        # feed another blocker to occupy the ordered queue, then the
        # low-deadline packet that should take over.
        rig.feed(0, 600)
        rig.feed(0, 10)
        engine.run_all()
        order = rig.departures()
        assert order[0] == 500  # already on the wire; nothing can stop it
        assert order[1] == 10  # took over ahead of 600
        assert order[2] == 600

    def test_ideal_heap_reorders_within_input(self, engine):
        rig = SwitchRig(engine, IDEAL)
        rig.feed(0, 500)
        rig.feed(0, 600)
        rig.feed(0, 10)
        engine.run_all()
        assert rig.departures() == [500, 10, 600]

    def test_deadline_tie_prefers_older_packet(self, engine):
        rig = SwitchRig(engine, IDEAL)
        older = rig.feed(0, 100)
        newer = rig.feed(1, 100)
        engine.run_all()
        received = [p for p, _ in rig.sinks[0].received]
        assert received == [older, newer]


class TestVCPriority:
    @pytest.mark.parametrize("arch", [IDEAL, SIMPLE_2VC, ADVANCED_2VC, TRADITIONAL_2VC])
    def test_regulated_has_absolute_priority(self, engine, arch):
        rig = SwitchRig(engine, arch)
        rig.feed(0, 10, vc=1)  # best-effort arrives first, grabs the wire
        rig.feed(1, 10_000, vc=1)
        rig.feed(2, 99_999, vc=0)  # regulated with a *huge* deadline
        engine.run_all()
        received = [(p.vc, p.deadline) for p, _ in rig.sinks[0].received]
        # After the in-flight BE packet, VC0 goes before the queued BE one.
        assert received[0] == (1, 10)
        assert received[1] == (0, 99_999)

    def test_best_effort_uses_leftover_bandwidth(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        rig.feed(0, 100, vc=0)
        rig.feed(1, 50, vc=1)
        engine.run_all()
        assert len(rig.sinks[0].received) == 2


class TestCreditDiscipline:
    def test_blocked_min_deadline_candidate_blocks_its_vc(self, engine):
        """EDF architectures: when the chosen candidate lacks credits, no
        other VC0 packet may overtake it (appendix flow-control rule)."""
        rig = SwitchRig(engine, ADVANCED_2VC, buf=4096)
        rig.sinks[0].auto_credit = False
        # Occupy half the output credit window; the sink withholds it.
        rig.feed(0, 10, size=2048)
        engine.run_all()
        assert len(rig.sinks[0].received) == 1
        # Two candidates: min-deadline 20 is too big for the remaining
        # 2048 credits; 30 is small and would fit -- but must NOT pass.
        rig.feed(1, 20, size=2560)
        rig.feed(2, 30, size=64)
        engine.run_all()
        assert len(rig.sinks[0].received) == 1  # both stuck behind the rule
        rig.sinks[0].auto_credit = True
        rig.sinks[0].release_credits()
        engine.run_all()
        assert rig.departures() == [10, 20, 30]

    def test_traditional_masks_creditless_candidates(self, engine):
        """The conventional switch skips requests that lack credits."""
        rig = SwitchRig(engine, TRADITIONAL_2VC, buf=4096)
        rig.sinks[0].auto_credit = False
        rig.feed(0, 1, size=2048)
        engine.run_all()
        rig.feed(1, 2, size=2560)  # cannot fit the remaining credits
        rig.feed(2, 3, size=64)  # fits; RR masking lets it pass
        engine.run_all()
        assert len(rig.sinks[0].received) == 2
        assert rig.departures()[1] == 3

    def test_blocked_vc0_does_not_block_vc1(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC, buf=2048)
        rig.sinks[0].auto_credit = False
        rig.feed(0, 1, size=2048, vc=0)
        engine.run_all()
        rig.feed(1, 2, size=2048, vc=0)  # VC0 now credit-blocked
        rig.feed(2, 3, size=512, vc=1)  # VC1 has its own buffer: may go
        engine.run_all()
        vcs = [p.vc for p, _ in rig.sinks[0].received]
        assert vcs == [0, 1]


class TestFlowState:
    def test_switch_keeps_no_per_flow_state(self, engine):
        """Structural check: a switch's attributes contain no flow table."""
        rig = SwitchRig(engine, ADVANCED_2VC)
        assert not hasattr(rig.switch, "flows")
        assert not hasattr(rig.switch, "flow_table")

    def test_hop_advances(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        pkt = rig.feed(0, 10)
        engine.run_all()
        assert pkt.hop == 1

    def test_bad_route_port_raises(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        with pytest.raises(ValueError):
            rig.feed(0, 10, out_port=99)

    def test_forwarding_counters(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        rig.feed(0, 1, size=100)
        rig.feed(1, 2, size=200)
        engine.run_all()
        assert rig.switch.packets_forwarded == 2
        assert rig.switch.bytes_forwarded == 300

    def test_double_attach_rejected(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        with pytest.raises(ValueError):
            rig.switch.attach_in(0, rig.in_links[1])

    def test_queued_introspection(self, engine):
        rig = SwitchRig(engine, ADVANCED_2VC)
        # Saturate: sink withholds credits so packets stay queued.
        rig.sinks[0].auto_credit = False
        for i in range(6):
            rig.feed(0, 10 + i, size=2048)
            engine.run_all()  # lets the in-link credit loop breathe
        # 4 fit through the 8 KB output credit window (one at a time), the
        # rest remain in the VOQ.
        assert rig.switch.queued_packets() == 2
        assert rig.switch.queued_bytes(0, 0) == 2 * 2048
