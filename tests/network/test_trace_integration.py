"""Tests for structured tracing through a whole fabric."""

import pytest

from repro.core.architectures import ARCHITECTURES
from repro.core.flow import FlowKind
from repro.network.fabric import Fabric
from repro.sim.monitor import Trace


@pytest.fixture
def traced_run(tiny_topology):
    trace = Trace()
    fabric = Fabric(tiny_topology, ARCHITECTURES["advanced-2vc"], trace=trace)
    flow = fabric.open_flow(0, 9, "control", kind=FlowKind.CONTROL)
    pkts = []
    fabric.subscribe_delivery(lambda p, t: pkts.append(p))
    fabric.submit(flow, 4000)  # two packets
    fabric.run(until=100_000)
    return trace, fabric, pkts


class TestFabricTracing:
    def test_injection_and_delivery_recorded(self, traced_run):
        trace, _, pkts = traced_run
        injects = trace.by_topic("host.inject")
        delivers = trace.by_topic("host.deliver")
        assert len(injects) == 2
        assert len(delivers) == 2
        # payloads carry (node, uid, vc)
        assert injects[0].payload[0] == "h0"
        assert {rec.payload[1] for rec in delivers} == {p.uid for p in pkts}

    def test_switch_hops_recorded_in_order(self, traced_run):
        trace, fabric, pkts = traced_run
        uid = pkts[0].uid
        forwards = [
            rec for rec in trace.by_topic("switch.forward") if rec.payload[3] == uid
        ]
        # h0 -> leaf -> spine -> leaf -> h9: three switch traversals.
        assert len(forwards) == 3
        times = [rec.time for rec in forwards]
        assert times == sorted(times)
        # The traversed switches form a connected leaf-spine-leaf walk.
        nodes = [rec.payload[0] for rec in forwards]
        assert nodes[0].startswith("sw0.")
        assert nodes[1].startswith("sw1.")
        assert nodes[2].startswith("sw0.")

    def test_enqueue_precedes_forward_per_switch(self, traced_run):
        trace, _, pkts = traced_run
        uid = pkts[0].uid
        for node in {r.payload[0] for r in trace.by_topic("switch.forward")}:
            enq = [
                r.time
                for r in trace.by_topic("switch.enqueue")
                if r.payload[0] == node and r.payload[3] == uid
            ]
            fwd = [
                r.time
                for r in trace.by_topic("switch.forward")
                if r.payload[0] == node and r.payload[3] == uid
            ]
            assert enq and fwd and enq[0] <= fwd[0]

    def test_topic_filtered_trace_is_cheap(self, tiny_topology):
        trace = Trace(topics={"host.deliver"})
        fabric = Fabric(tiny_topology, ARCHITECTURES["advanced-2vc"], trace=trace)
        flow = fabric.open_flow(0, 9, "control", kind=FlowKind.CONTROL)
        fabric.submit(flow, 2000)
        fabric.run(until=100_000)
        assert {r.topic for r in trace.records} == {"host.deliver"}

    def test_null_trace_default_records_nothing(self, make_fabric):
        fabric = make_fabric()
        assert fabric.trace.enabled is False
