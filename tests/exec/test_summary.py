"""Tests for RunSummary extraction: pickling, parity, serialization."""

import math
import pickle

import pytest

from repro.exec.summary import (
    DEFAULT_CDF_SAMPLES,
    FrozenStats,
    RunSummary,
    downsample_sorted,
    ensure_summary,
    execute_config,
    summarize_run,
)
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.sim import units
from repro.stats.running import RunningStats


def quick_config(**overrides):
    defaults = dict(
        architecture="advanced-2vc",
        load=0.5,
        topology="tiny",
        warmup_ns=50 * units.US,
        measure_ns=150 * units.US,
        mix=scaled_video_mix(0.5, time_scale=0.02),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def run_pair():
    """(RunResult, RunSummary) of the same seeded run.

    The tiny run stays far below DEFAULT_CDF_SAMPLES, so the summary
    keeps the *exact* reservoirs and quantiles must match bit-for-bit.
    """
    result = run_experiment(quick_config())
    return result, summarize_run(result)


class TestDownsample:
    def test_exact_below_cap(self):
        values = tuple(float(v) for v in range(100))
        assert downsample_sorted(values, 100) == values
        assert downsample_sorted(values, 5000) == values

    def test_keeps_min_and_max(self):
        values = tuple(float(v) for v in range(1000))
        down = downsample_sorted(values, 64)
        assert len(down) == 64
        assert down[0] == values[0]
        assert down[-1] == values[-1]

    def test_monotone(self):
        values = tuple(float(v) ** 1.5 for v in range(777))
        down = downsample_sorted(values, 33)
        assert list(down) == sorted(down)

    def test_rejects_degenerate_cap(self):
        with pytest.raises(ValueError):
            downsample_sorted((1.0, 2.0, 3.0), 1)

    def test_empty_passthrough(self):
        assert downsample_sorted((), 16) == ()


class TestFrozenStats:
    def test_empty_stats_round_trip_through_json_dict(self):
        frozen = FrozenStats.from_running(RunningStats())
        assert frozen.min == math.inf and frozen.max == -math.inf
        doc = frozen.to_dict()
        assert doc["min"] is None and doc["max"] is None
        assert FrozenStats.from_dict(doc) == frozen

    def test_mirrors_running_stats(self):
        running = RunningStats()
        for v in (1.0, 2.0, 4.0):
            running.add(v)
        frozen = FrozenStats.from_running(running)
        assert frozen.count == 3
        assert frozen.mean == running.mean
        assert frozen.std == running.std
        assert frozen.min == 1.0 and frozen.max == 4.0


class TestSummaryParity:
    """Summary metrics must equal the live RunResult's, bit-for-bit."""

    def test_class_counters(self, run_pair):
        result, summary = run_pair
        for tclass, stats in result.collector.classes.items():
            frozen = summary.get(tclass)
            assert frozen.packets == stats.packets
            assert frozen.bytes == stats.bytes
            assert frozen.messages == stats.messages

    def test_latency_and_jitter_stats(self, run_pair):
        result, summary = run_pair
        for tclass, stats in result.collector.classes.items():
            frozen = summary.get(tclass)
            assert frozen.packet_latency.mean == stats.packet_latency.mean
            assert frozen.message_latency.mean == stats.message_latency.mean
            assert frozen.message_latency.max == stats.message_latency.max
            assert frozen.jitter.std == stats.jitter.std

    def test_quantiles_exact_in_small_runs(self, run_pair):
        result, summary = run_pair
        compared = 0
        for tclass in result.collector.classes:
            if not summary.get(tclass).message_samples:
                # no completed messages (e.g. video frames cut off by the
                # tiny window): the live CDF is equally empty
                with pytest.raises(ValueError):
                    result.collector.get(tclass).message_cdf()
                continue
            live = result.collector.get(tclass).message_cdf()
            frozen = summary.get(tclass).message_cdf()
            for q in (0.5, 0.9, 0.99):
                assert frozen.quantile(q) == live.quantile(q)
            compared += 1
        assert compared > 0

    def test_throughput_matches(self, run_pair):
        result, summary = run_pair
        for tclass in result.collector.classes:
            assert summary.throughput(tclass) == result.throughput(tclass)
            assert summary.normalized_throughput(tclass) == pytest.approx(
                result.normalized_throughput(tclass)
            )

    def test_run_metadata(self, run_pair):
        result, summary = run_pair
        assert summary.config == result.config
        assert summary.events_executed == result.events_executed
        assert summary.n_hosts == result.fabric.topology.n_hosts
        assert summary.window_ns == result.collector.window_ns


class TestSummarySurface:
    def test_collector_shim(self, run_pair):
        _, summary = run_pair
        assert summary.collector is summary
        assert summary.collector.get("control").packets > 0

    def test_missing_class_keyerror_names_known_classes(self, run_pair):
        _, summary = run_pair
        with pytest.raises(KeyError, match="telepathy.*classes seen"):
            summary.get("telepathy")

    def test_ensure_summary_idempotent(self, run_pair):
        result, summary = run_pair
        assert ensure_summary(summary) is summary
        assert ensure_summary(result) == summary


class TestSerialization:
    def test_pickle_round_trip_equality(self, run_pair):
        _, summary = run_pair
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
        assert clone.get("control").message_cdf().quantile(0.5) == summary.get(
            "control"
        ).message_cdf().quantile(0.5)

    def test_pickle_is_compact(self, run_pair):
        # the whole point: kilobytes across the process boundary, not
        # the simulation graph
        _, summary = run_pair
        assert len(pickle.dumps(summary)) < 512 * 1024

    def test_dict_round_trip_equality(self, run_pair):
        _, summary = run_pair
        assert RunSummary.from_dict(summary.to_dict()) == summary

    def test_from_dict_rejects_wrong_schema(self, run_pair):
        _, summary = run_pair
        doc = summary.to_dict()
        doc["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunSummary.from_dict(doc)


class TestExecuteConfig:
    def test_matches_run_experiment(self, run_pair):
        result, summary = run_pair
        executed = execute_config(quick_config())
        # wall_seconds is real time and differs run to run; everything
        # simulated must be identical
        assert executed.classes == summary.classes
        assert executed.events_executed == summary.events_executed
        assert executed.config == summary.config

    def test_obs_snapshot_on_request(self):
        config = quick_config(measure_ns=100 * units.US)
        bare = execute_config(config)
        observed = execute_config(config, collect_obs=True)
        assert bare.obs is None
        assert isinstance(observed.obs, dict) and observed.obs
        assert observed.classes == bare.classes

    def test_cdf_samples_cap_applies(self):
        config = quick_config(measure_ns=100 * units.US)
        capped = execute_config(config, cdf_samples=8)
        stats = capped.get("control")
        assert 0 < len(stats.packet_samples) <= 8
        assert capped.to_dict()  # still serializes
