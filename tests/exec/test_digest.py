"""Tests for canonical config serialization and content-addressed keys."""

import json
import os
import subprocess
import sys

from repro.exec.digest import canonical_config_dict, config_digest, config_from_dict
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.sim import units


def quick_config(**overrides):
    defaults = dict(
        architecture="advanced-2vc",
        load=0.5,
        topology="tiny",
        warmup_ns=50 * units.US,
        measure_ns=120 * units.US,
        mix=scaled_video_mix(0.5, time_scale=0.02),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestCanonicalDict:
    def test_round_trip_equality(self):
        config = quick_config()
        assert config_from_dict(canonical_config_dict(config)) == config

    def test_round_trip_through_json(self):
        config = quick_config(seed=9)
        doc = json.loads(json.dumps(canonical_config_dict(config)))
        assert config_from_dict(doc) == config

    def test_round_trip_without_mix(self):
        config = quick_config(mix=None)
        assert config_from_dict(canonical_config_dict(config)) == config

    def test_json_safe(self):
        # must serialize without a custom encoder (tuples already lists)
        blob = json.dumps(canonical_config_dict(quick_config()), sort_keys=True)
        assert '"architecture"' in blob


class TestConfigDigest:
    def test_equal_configs_equal_digests(self):
        assert config_digest(quick_config()) == config_digest(quick_config())

    def test_sha256_hex_shape(self):
        digest = config_digest(quick_config())
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_any_field_change_changes_digest(self):
        base = config_digest(quick_config())
        assert config_digest(quick_config(seed=2)) != base
        assert config_digest(quick_config(load=0.6)) != base
        assert config_digest(quick_config(architecture="ideal")) != base
        assert config_digest(quick_config(measure_ns=121 * units.US)) != base

    def test_extras_fold_into_digest(self):
        config = quick_config()
        assert config_digest(config) != config_digest(config, cdf_samples=64)
        assert config_digest(config, cdf_samples=64) != config_digest(
            config, cdf_samples=128
        )
        assert config_digest(config, cdf_samples=64) == config_digest(
            config, cdf_samples=64
        )

    def test_stable_across_processes_and_hash_seeds(self):
        """The satellite guarantee: sha256 over canonical JSON, never
        ``hash()``, so fresh interpreters with different PYTHONHASHSEED
        values must reproduce the digest exactly."""
        local = config_digest(quick_config(seed=5))
        script = (
            "from repro.exec.digest import config_digest\n"
            "from repro.experiments.config import ExperimentConfig, scaled_video_mix\n"
            "from repro.sim import units\n"
            "config = ExperimentConfig(architecture='advanced-2vc', load=0.5,\n"
            "    seed=5, topology='tiny', warmup_ns=50 * units.US,\n"
            "    measure_ns=120 * units.US,\n"
            "    mix=scaled_video_mix(0.5, time_scale=0.02))\n"
            "print(config_digest(config))\n"
        )
        for hash_seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            assert out.stdout.strip() == local, f"PYTHONHASHSEED={hash_seed}"
