"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.exec.summary import execute_config
from repro.experiments.config import ExperimentConfig
from repro.sim import units


def quick_config(**overrides):
    defaults = dict(
        architecture="ideal",
        load=0.4,
        topology="tiny",
        warmup_ns=40 * units.US,
        measure_ns=100 * units.US,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def entry():
    config = quick_config()
    return config_digest(config), execute_config(config)


class TestMemoryCache:
    def test_miss_then_hit(self, entry):
        digest, summary = entry
        cache = ResultCache()
        assert cache.get(digest) is None
        cache.put(digest, summary)
        assert cache.get(digest) is summary
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_no_disk_side_effects(self, entry, tmp_path):
        digest, summary = entry
        ResultCache().put(digest, summary)
        assert list(tmp_path.iterdir()) == []


class TestDiskCache:
    def test_round_trip_across_instances(self, entry, tmp_path):
        digest, summary = entry
        ResultCache(tmp_path).put(digest, summary)
        assert (tmp_path / f"{digest}.json").is_file()
        cold = ResultCache(tmp_path)
        loaded = cold.get(digest)
        assert loaded == summary
        assert cold.stats() == {"hits": 1, "misses": 0}

    def test_entry_is_valid_json_with_digest(self, entry, tmp_path):
        digest, summary = entry
        ResultCache(tmp_path).put(digest, summary)
        payload = json.loads((tmp_path / f"{digest}.json").read_text())
        assert payload["digest"] == digest
        assert payload["summary"]["config"]["architecture"] == "ideal"

    def test_corrupt_entry_degrades_to_miss(self, entry, tmp_path):
        digest, summary = entry
        ResultCache(tmp_path).put(digest, summary)
        (tmp_path / f"{digest}.json").write_text("{not json", encoding="utf-8")
        cache = ResultCache(tmp_path)
        assert cache.get(digest) is None
        assert cache.stats() == {"hits": 0, "misses": 1}

    def test_renamed_entry_rejected(self, entry, tmp_path):
        # a file whose payload digest disagrees with its name is foreign:
        # never trust the name alone
        digest, summary = entry
        ResultCache(tmp_path).put(digest, summary)
        other = "f" * 64
        (tmp_path / f"{digest}.json").rename(tmp_path / f"{other}.json")
        assert ResultCache(tmp_path).get(other) is None

    def test_missing_dir_created_lazily(self, entry, tmp_path):
        digest, summary = entry
        nested = tmp_path / "a" / "b"
        cache = ResultCache(nested)
        assert cache.get(digest) is None  # no dir yet: plain miss
        cache.put(digest, summary)
        assert (nested / f"{digest}.json").is_file()

    def test_no_tmp_droppings(self, entry, tmp_path):
        digest, summary = entry
        ResultCache(tmp_path).put(digest, summary)
        assert [p.name for p in tmp_path.iterdir()] == [f"{digest}.json"]
