"""Tests for SweepExecutor: determinism, ordering, cache, failure modes."""

import os
import time

import pytest

from repro.exec.executor import SweepExecutor, SweepTaskError
from repro.exec.summary import execute_config
from repro.experiments.config import ExperimentConfig
from repro.sim import units


def quick_config(**overrides):
    defaults = dict(
        architecture="ideal",
        load=0.4,
        topology="tiny",
        warmup_ns=40 * units.US,
        measure_ns=100 * units.US,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


GRID = [
    quick_config(architecture="ideal"),
    quick_config(architecture="simple-2vc"),
    quick_config(architecture="advanced-2vc"),
]


# Failure-injection workers: top-level so the pool can pickle them.
def _boom(config, *, cdf_samples, collect_obs):
    if config.architecture == "simple-2vc":
        raise RuntimeError("injected failure")
    return execute_config(config, cdf_samples=cdf_samples, collect_obs=collect_obs)


def _die(config, *, cdf_samples, collect_obs):
    if config.architecture == "simple-2vc":
        os._exit(13)  # kill the worker process without a traceback
    return execute_config(config, cdf_samples=cdf_samples, collect_obs=collect_obs)


def _sleepy(config, *, cdf_samples, collect_obs):
    time.sleep(60.0)
    return execute_config(config, cdf_samples=cdf_samples, collect_obs=collect_obs)


def strip_wall(summary):
    """Everything but wall_seconds (real time; varies run to run)."""
    doc = summary.to_dict()
    doc.pop("wall_seconds")
    return doc


class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = SweepExecutor(jobs=1).run(GRID)
        parallel = SweepExecutor(jobs=2).run(GRID)
        assert [strip_wall(s) for s in serial] == [strip_wall(s) for s in parallel]

    def test_results_align_with_submission_order(self):
        summaries = SweepExecutor(jobs=2).run(GRID)
        assert [s.config.architecture for s in summaries] == [
            c.architecture for c in GRID
        ]

    def test_duplicate_configs_coalesce(self):
        executor = SweepExecutor(jobs=1)
        first, second = executor.run([GRID[0], GRID[0]])
        assert first is second
        assert executor.stats()["executed"] == 1


class TestValidation:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)

    def test_empty_batch(self):
        executor = SweepExecutor(jobs=2)
        assert executor.run([]) == []
        assert executor.stats()["tasks"] == 0


class TestCacheIntegration:
    def test_warm_run_executes_nothing(self, tmp_path):
        cold = SweepExecutor(jobs=1, cache_dir=tmp_path)
        first = cold.run(GRID)
        assert cold.stats() == {
            "tasks": 3,
            "cache_hits": 0,
            "executed": 3,
            "jobs": 1,
        }
        warm = SweepExecutor(jobs=2, cache_dir=tmp_path)
        second = warm.run(GRID)
        assert warm.stats() == {
            "tasks": 3,
            "cache_hits": 3,
            "executed": 0,
            "jobs": 2,
        }
        assert second == first  # replay is exact, wall_seconds included

    def test_interrupted_campaign_resumes(self, tmp_path):
        # simulate an interrupt: only the first point made it to disk
        partial = SweepExecutor(jobs=1, cache_dir=tmp_path)
        partial.run(GRID[:1])
        resumed = SweepExecutor(jobs=1, cache_dir=tmp_path)
        resumed.run(GRID)
        assert resumed.stats()["cache_hits"] == 1
        assert resumed.stats()["executed"] == 2

    def test_option_changes_miss_the_cache(self, tmp_path):
        SweepExecutor(jobs=1, cache_dir=tmp_path, cdf_samples=64).run(GRID[:1])
        other = SweepExecutor(jobs=1, cache_dir=tmp_path, cdf_samples=128)
        other.run(GRID[:1])
        assert other.stats()["executed"] == 1  # different digest, no alias


class TestFailureModes:
    def test_serial_worker_failure_wraps(self):
        executor = SweepExecutor(jobs=1, worker=_boom)
        with pytest.raises(SweepTaskError) as excinfo:
            executor.run(GRID)
        err = excinfo.value
        assert err.kind == SweepTaskError.FAILED
        assert err.index == 1
        assert err.config.architecture == "simple-2vc"
        assert "injected failure" in str(err)

    def test_pool_worker_failure_wraps(self):
        executor = SweepExecutor(jobs=2, worker=_boom)
        with pytest.raises(SweepTaskError) as excinfo:
            executor.run(GRID)
        assert excinfo.value.kind == SweepTaskError.FAILED
        assert excinfo.value.config.architecture == "simple-2vc"

    def test_pool_failure_still_caches_completed_points(self, tmp_path):
        executor = SweepExecutor(jobs=2, cache_dir=tmp_path, worker=_boom)
        with pytest.raises(SweepTaskError):
            executor.run(GRID)
        healthy = SweepExecutor(jobs=1, cache_dir=tmp_path)
        healthy.run(GRID)
        assert healthy.stats()["cache_hits"] == 2  # ideal + advanced survived

    def test_worker_crash_surfaces_as_crashed(self):
        executor = SweepExecutor(jobs=2, worker=_die)
        with pytest.raises(SweepTaskError) as excinfo:
            executor.run(GRID)
        assert excinfo.value.kind == SweepTaskError.CRASHED

    def test_timeout_surfaces_as_timeout(self):
        executor = SweepExecutor(jobs=2, timeout_s=0.5, worker=_sleepy)
        with pytest.raises(SweepTaskError) as excinfo:
            executor.run(GRID[:2])
        assert excinfo.value.kind == SweepTaskError.TIMEOUT
        assert "0.5" in str(excinfo.value)
