"""Small helpers shared across test modules."""

from __future__ import annotations

from repro.network.packet import Packet


def mkpkt(
    deadline: int,
    *,
    size: int = 256,
    flow_id: int = 1,
    seq: int = 0,
    src: int = 0,
    dst: int = 1,
    vc: int = 0,
    tclass: str = "test",
    **kwargs,
) -> Packet:
    """A packet with the given deadline; uid auto-increments globally, so
    creation order == arrival order for tie-breaking purposes."""
    return Packet(
        flow_id=flow_id,
        seq=seq,
        src=src,
        dst=dst,
        size=size,
        vc=vc,
        tclass=tclass,
        deadline=deadline,
        **kwargs,
    )
