"""Tests for eligible-time smoothing."""

import pytest

from repro.core.eligible import DEFAULT_OFFSET_NS, EligiblePolicy


class TestEligiblePolicy:
    def test_paper_default_offset_is_20us(self):
        assert DEFAULT_OFFSET_NS == 20_000
        assert EligiblePolicy().offset_ns == 20_000

    def test_eligible_is_deadline_minus_offset(self):
        policy = EligiblePolicy(5_000)
        assert policy.eligible_time(deadline=100_000, now=0) == 95_000

    def test_never_in_the_past(self):
        policy = EligiblePolicy(5_000)
        assert policy.eligible_time(deadline=3_000, now=1_000) == 1_000

    def test_disabled_policy_releases_immediately(self):
        policy = EligiblePolicy(None)
        assert policy.enabled is False
        assert policy.eligible_time(deadline=10**9, now=123) == 123

    def test_zero_offset_holds_until_deadline(self):
        policy = EligiblePolicy(0)
        assert policy.eligible_time(deadline=500, now=0) == 500

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            EligiblePolicy(-1)

    def test_enabled_flag(self):
        assert EligiblePolicy(0).enabled is True
        assert EligiblePolicy(None).enabled is False
