"""Tests for the Section 3.1 deadline stampers."""

import pytest

from repro.core.deadline import ControlStamper, FrameBasedStamper, RateBasedStamper


class TestRateBased:
    def test_formula_from_idle(self):
        # D = max(D_prev, now) + L/BW with an idle flow anchors at now.
        stamper = RateBasedStamper(0.5)  # 0.5 B/ns
        assert stamper.stamp(now=1000, size=100) == 1000 + 200

    def test_backlogged_flow_chains_deadlines(self):
        stamper = RateBasedStamper(1.0)
        d1 = stamper.stamp(now=0, size=100)
        d2 = stamper.stamp(now=0, size=100)
        assert (d1, d2) == (100, 200)

    def test_idle_gap_reanchors_to_now(self):
        stamper = RateBasedStamper(1.0)
        stamper.stamp(now=0, size=100)  # deadline 100
        assert stamper.stamp(now=5000, size=100) == 5100

    def test_deadlines_strictly_increase(self):
        stamper = RateBasedStamper(1.0)
        previous = 0
        for now in (0, 0, 50, 50, 400):
            deadline = stamper.stamp(now=now, size=10)
            assert deadline > previous
            previous = deadline

    def test_subnanosecond_increment_rounds_up_to_one(self):
        # Eq. 1 needs strict increase even for tiny packets on fast links.
        stamper = RateBasedStamper(1000.0)
        d1 = stamper.stamp(now=0, size=1)
        d2 = stamper.stamp(now=0, size=1)
        assert d2 == d1 + 1

    def test_fractional_bandwidth_rounds_up(self):
        stamper = RateBasedStamper(0.3)
        assert stamper.stamp(now=0, size=100) == 334  # ceil(100/0.3)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            RateBasedStamper(0.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RateBasedStamper(1.0).stamp(now=0, size=0)


class TestControl:
    def test_control_is_rate_based_at_link_speed(self):
        stamper = ControlStamper(1.0)
        # deadline == now + bare serialization: the earliest possible.
        assert stamper.stamp(now=500, size=256) == 756

    def test_control_has_earlier_deadline_than_any_reserved_flow(self):
        control = ControlStamper(1.0)
        video = RateBasedStamper(0.01)
        assert control.stamp(now=0, size=1024) < video.stamp(now=0, size=1024)


class TestFrameBased:
    def test_frame_spread_evenly(self):
        stamper = FrameBasedStamper(10_000)
        deadlines = stamper.stamp_frame(now=0, parts=4)
        assert deadlines == [2500, 5000, 7500, 10000]

    def test_last_packet_deadline_is_target_independent_of_size(self):
        # An 80 KB frame (40 parts) and a 2 KB frame (1 part) both complete
        # one target-latency after arrival -- the paper's key property.
        stamper_big = FrameBasedStamper(10_000_000)
        stamper_small = FrameBasedStamper(10_000_000)
        big = stamper_big.stamp_frame(now=0, parts=40)
        small = stamper_small.stamp_frame(now=0, parts=1)
        assert big[-1] == small[-1] == 10_000_000

    def test_consecutive_frames_chain(self):
        stamper = FrameBasedStamper(1000)
        first = stamper.stamp_frame(now=0, parts=2)
        second = stamper.stamp_frame(now=0, parts=2)  # back-to-back frames
        assert first == [500, 1000]
        assert second == [1500, 2000]

    def test_idle_stream_reanchors(self):
        stamper = FrameBasedStamper(1000)
        stamper.stamp_frame(now=0, parts=1)
        assert stamper.stamp_frame(now=50_000, parts=1) == [51_000]

    def test_single_packet_stamp(self):
        stamper = FrameBasedStamper(1000)
        assert stamper.stamp(now=0, size=999) == 1000

    def test_strictly_increasing_within_frame(self):
        stamper = FrameBasedStamper(10)
        deadlines = stamper.stamp_frame(now=0, parts=50)  # increment rounds to 0
        assert all(b > a for a, b in zip(deadlines, deadlines[1:]))

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            FrameBasedStamper(1000).stamp_frame(now=0, parts=0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            FrameBasedStamper(0)
