"""Tests for flow descriptors and the registry."""

import pytest

from repro.constants import VC_BEST_EFFORT, VC_REGULATED
from repro.core.deadline import ControlStamper, FrameBasedStamper, RateBasedStamper
from repro.core.flow import FlowKind, FlowRegistry, FlowSpec


class TestFlowSpec:
    def test_rate_flow_requires_bandwidth(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=1, src=0, dst=1, tclass="x", kind=FlowKind.RATE)

    def test_frame_flow_requires_target(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=1, src=0, dst=1, tclass="x", kind=FlowKind.FRAME)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=1, src=3, dst=3, tclass="x", bw_bytes_per_ns=1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=1, src=0, dst=1, tclass="x", kind="bogus", bw_bytes_per_ns=1.0)

    def test_negative_vc_rejected(self):
        # Any non-negative VC index is allowed at spec level (multi-VC
        # fabrics exist); the fabric bounds it against its own VC count.
        with pytest.raises(ValueError):
            FlowSpec(flow_id=1, src=0, dst=1, tclass="x", vc=-1, bw_bytes_per_ns=1.0)
        FlowSpec(flow_id=1, src=0, dst=1, tclass="x", vc=3, bw_bytes_per_ns=1.0)

    @pytest.mark.parametrize(
        "kind,kwargs,stamper_cls",
        [
            (FlowKind.RATE, {"bw_bytes_per_ns": 0.5}, RateBasedStamper),
            (FlowKind.CONTROL, {"bw_bytes_per_ns": 1.0}, ControlStamper),
            (FlowKind.FRAME, {"target_latency_ns": 1000}, FrameBasedStamper),
        ],
    )
    def test_make_stamper_matches_kind(self, kind, kwargs, stamper_cls):
        spec = FlowSpec(flow_id=1, src=0, dst=1, tclass="x", kind=kind, **kwargs)
        assert type(spec.make_stamper()) is stamper_cls


class TestFlowRegistry:
    def test_ids_are_unique_and_sequential(self):
        reg = FlowRegistry()
        a = reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        b = reg.create(src=1, dst=2, tclass="x", bw_bytes_per_ns=1.0)
        assert a.spec.flow_id != b.spec.flow_id
        assert reg.get(a.spec.flow_id) is a
        assert len(reg) == 2

    def test_close_releases_flow_state(self):
        reg = FlowRegistry()
        flow = reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        keep = reg.create(src=1, dst=2, tclass="x", bw_bytes_per_ns=1.0)
        closed = reg.close(flow.spec.flow_id)
        assert closed is flow
        assert len(reg) == 1
        assert reg.get(keep.spec.flow_id) is keep
        with pytest.raises(KeyError):
            reg.get(flow.spec.flow_id)

    def test_close_never_recycles_flow_ids(self):
        reg = FlowRegistry()
        first = reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        reg.close(first.spec.flow_id)
        reopened = reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        assert reopened.spec.flow_id > first.spec.flow_id

    def test_by_host(self):
        reg = FlowRegistry()
        reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        reg.create(src=0, dst=2, tclass="x", bw_bytes_per_ns=1.0)
        reg.create(src=5, dst=2, tclass="x", bw_bytes_per_ns=1.0)
        assert len(reg.by_host(0)) == 2
        assert len(reg.by_host(5)) == 1
        assert reg.by_host(9) == []

    def test_sequence_counters(self):
        reg = FlowRegistry()
        flow = reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        assert [flow.take_seq() for _ in range(3)] == [0, 1, 2]
        assert [flow.take_msg() for _ in range(2)] == [0, 1]

    def test_default_vcs(self):
        reg = FlowRegistry()
        regulated = reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0)
        best_effort = reg.create(
            src=0, dst=1, tclass="y", vc=VC_BEST_EFFORT, bw_bytes_per_ns=1.0
        )
        assert regulated.spec.vc == VC_REGULATED
        assert best_effort.spec.vc == VC_BEST_EFFORT

    def test_iteration(self):
        reg = FlowRegistry()
        created = {
            reg.create(src=0, dst=1, tclass="x", bw_bytes_per_ns=1.0).spec.flow_id,
            reg.create(src=2, dst=3, tclass="x", bw_bytes_per_ns=1.0).spec.flow_id,
        }
        assert {f.spec.flow_id for f in reg} == created
