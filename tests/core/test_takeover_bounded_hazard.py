"""Why the take-over queue must share the VC's whole memory.

The appendix notes that "the two queues can dynamically take all the
memory allowed for the VC and, therefore, it is not possible for a queue
to become full while there is space in the other queue".  That is a real
design constraint, not a footnote: if the take-over FIFO U had its own
bounded memory, an arriving small-deadline packet would have to spill
into the ordered FIFO L, violating Theorem 1 (L's sortedness) -- the
invariant every appendix proof builds on.  This test constructs the
violation on a hypothetical bounded-U variant and shows the shipped
structure is immune by construction.

(Whether the spill policy can also produce end-to-end flow reordering is
harder to settle -- L's FIFO discipline blocks the obvious attacks -- but
losing Theorem 1 already means the design can no longer be *proved*
safe, which is the point.)
"""

from repro.core.queues import TakeOverQueue
from tests.helpers import mkpkt


class BoundedUTakeOverQueue(TakeOverQueue):
    """Hypothetical hardware with a fixed-size take-over FIFO: overflow
    spills into the ordered queue (it must go somewhere -- the upstream's
    credits were already granted)."""

    def __init__(self, max_takeover: int):
        super().__init__(None)
        self.max_takeover = max_takeover

    def push(self, pkt) -> None:
        self._charge(pkt)
        lower = self._lower
        if lower and pkt.deadline < lower[-1].deadline and len(self._upper) < self.max_takeover:
            self._upper.append(pkt)
        else:
            lower.append(pkt)


class TestBoundedUHazard:
    def test_spill_breaks_theorem_1(self):
        queue = BoundedUTakeOverQueue(max_takeover=1)
        queue.push(mkpkt(1000))
        queue.push(mkpkt(900))  # fills the single U slot
        queue.push(mkpkt(950))  # forced to spill into L
        deadlines = [p.deadline for p in queue.ordered_snapshot]
        assert deadlines != sorted(deadlines)  # Theorem 1 violated

    def test_shipped_structure_preserves_theorem_1(self):
        queue = TakeOverQueue()
        queue.push(mkpkt(1000))
        queue.push(mkpkt(900))
        queue.push(mkpkt(950))
        deadlines = [p.deadline for p in queue.ordered_snapshot]
        assert deadlines == sorted(deadlines)
        assert [p.deadline for p in queue.takeover_snapshot] == [900, 950]

    def test_zero_capacity_u_degenerates_to_plain_fifo(self):
        """With no take-over slots at all, every packet lands in L in
        arrival order -- exactly the Simple architecture's FIFO, i.e. the
        take-over capacity is precisely what separates Advanced from
        Simple."""
        queue = BoundedUTakeOverQueue(max_takeover=0)
        for d in (500, 100, 300):
            queue.push(mkpkt(d))
        assert [queue.pop().deadline for _ in range(3)] == [500, 100, 300]
