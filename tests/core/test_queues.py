"""Unit tests for the three buffer structures (FIFO, EDF heap, take-over)."""

import pytest

from repro.core.queues import EDFHeapQueue, FifoQueue, QueueFullError, TakeOverQueue
from tests.helpers import mkpkt


ALL_QUEUES = [FifoQueue, EDFHeapQueue, TakeOverQueue]


@pytest.mark.parametrize("queue_cls", ALL_QUEUES)
class TestCommonBehaviour:
    def test_empty_queue(self, queue_cls):
        q = queue_cls()
        assert len(q) == 0
        assert not q
        assert q.head() is None
        assert q.used_bytes == 0

    def test_push_pop_single(self, queue_cls):
        q = queue_cls()
        pkt = mkpkt(100)
        q.push(pkt)
        assert len(q) == 1
        assert q.head() is pkt
        assert q.pop() is pkt
        assert len(q) == 0

    def test_byte_accounting(self, queue_cls):
        q = queue_cls()
        q.push(mkpkt(1, size=100))
        q.push(mkpkt(2, size=250))
        assert q.used_bytes == 350
        q.pop()
        q.pop()
        assert q.used_bytes == 0

    def test_capacity_enforced(self, queue_cls):
        q = queue_cls(capacity_bytes=512)
        q.push(mkpkt(1, size=400))
        with pytest.raises(QueueFullError):
            q.push(mkpkt(2, size=200))

    def test_capacity_frees_on_pop(self, queue_cls):
        q = queue_cls(capacity_bytes=512)
        q.push(mkpkt(1, size=400))
        q.pop()
        q.push(mkpkt(2, size=400))  # fits again

    def test_pop_empty_raises(self, queue_cls):
        with pytest.raises(IndexError):
            queue_cls().pop()

    def test_iter_yields_all(self, queue_cls):
        q = queue_cls()
        pkts = [mkpkt(d) for d in (5, 3, 9)]
        for pkt in pkts:
            q.push(pkt)
        assert sorted(p.deadline for p in q) == [3, 5, 9]

    def test_drain_in_head_order_empties(self, queue_cls):
        q = queue_cls()
        for d in (7, 1, 5, 5, 2):
            q.push(mkpkt(d))
        drained = [q.pop() for _ in range(5)]
        assert len(q) == 0
        assert len(drained) == 5


class TestFifoOrder:
    def test_strict_arrival_order(self):
        q = FifoQueue()
        pkts = [mkpkt(d) for d in (9, 1, 5)]
        for pkt in pkts:
            q.push(pkt)
        assert [q.pop() for _ in range(3)] == pkts

    def test_head_is_oldest_not_minimum(self):
        q = FifoQueue()
        late = mkpkt(1000)
        early = mkpkt(1)
        q.push(late)
        q.push(early)
        assert q.head() is late  # the order-error scenario of Section 3.4


class TestHeapOrder:
    def test_dequeues_in_deadline_order(self):
        q = EDFHeapQueue()
        for d in (50, 10, 30, 20, 40):
            q.push(mkpkt(d))
        assert [q.pop().deadline for _ in range(5)] == [10, 20, 30, 40, 50]

    def test_ties_break_by_arrival(self):
        q = EDFHeapQueue()
        first = mkpkt(5)
        second = mkpkt(5)
        q.push(second)  # pushed out of arrival order on purpose:
        q.push(first)  # uid order still decides
        assert q.pop() is first
        assert q.pop() is second

    def test_head_tracks_minimum_across_pushes(self):
        q = EDFHeapQueue()
        q.push(mkpkt(100))
        assert q.head().deadline == 100
        q.push(mkpkt(10))
        assert q.head().deadline == 10


class TestTakeOverStructure:
    def test_ascending_arrivals_stay_in_ordered_queue(self):
        q = TakeOverQueue()
        for d in (10, 20, 30):
            q.push(mkpkt(d))
        assert len(q.ordered_snapshot) == 3
        assert len(q.takeover_snapshot) == 0

    def test_equal_deadline_goes_to_ordered_queue(self):
        # Definition 1: D(p) >= D(L_tail) -> L queue.
        q = TakeOverQueue()
        q.push(mkpkt(10))
        q.push(mkpkt(10))
        assert len(q.ordered_snapshot) == 2

    def test_smaller_deadline_goes_to_takeover_queue(self):
        q = TakeOverQueue()
        q.push(mkpkt(100))
        overtaker = mkpkt(50)
        q.push(overtaker)
        assert q.takeover_snapshot == (overtaker,)

    def test_takeover_packet_overtakes(self):
        q = TakeOverQueue()
        blocker = mkpkt(100)
        q.push(blocker)
        overtaker = mkpkt(50)
        q.push(overtaker)
        assert q.pop() is overtaker
        assert q.pop() is blocker

    def test_head_is_min_of_two_heads(self):
        q = TakeOverQueue()
        q.push(mkpkt(100))
        q.push(mkpkt(200))
        q.push(mkpkt(50))  # -> U
        assert q.head().deadline == 50

    def test_tie_between_heads_prefers_older_packet(self):
        q = TakeOverQueue()
        l_head = mkpkt(100)
        q.push(l_head)
        q.push(mkpkt(300))
        u_head = mkpkt(100)  # equal deadline, arrived later -> U
        q.push(u_head)
        assert q.head() is l_head

    def test_fifo_within_takeover_queue(self):
        q = TakeOverQueue()
        q.push(mkpkt(1000))
        first_u = mkpkt(500)
        second_u = mkpkt(400)  # smaller deadline but behind first_u in U
        q.push(first_u)
        q.push(second_u)
        assert q.pop() is first_u  # U is FIFO: 400 cannot pass 500 inside U
        assert q.pop() is second_u

    def test_interleaved_sequence(self):
        q = TakeOverQueue()
        arrivals = [30, 10, 40, 20, 50, 15]
        for d in arrivals:
            q.push(mkpkt(d))
        departures = [q.pop().deadline for _ in range(len(arrivals))]
        # Not necessarily fully sorted (that is the point -- order errors are
        # only *reduced*), but far closer to sorted than FIFO:
        assert departures[0] == 10
        assert departures[-1] == 50

    def test_shared_capacity_across_both_queues(self):
        q = TakeOverQueue(capacity_bytes=600)
        q.push(mkpkt(100, size=300))
        q.push(mkpkt(50, size=300))  # goes to U; memory is shared
        with pytest.raises(QueueFullError):
            q.push(mkpkt(60, size=10))
