"""Tests for the pipelined-heap buffer (the paper's reference [9])."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.queues import EDFHeapQueue, PipelinedHeapQueue
from tests.helpers import mkpkt


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


class TestLogicalBehaviour:
    """With settle_cycles=0 the structure is exactly the abstract heap."""

    def test_exact_edf_order(self):
        queue = PipelinedHeapQueue(settle_cycles=0)
        for d in (50, 10, 30, 20, 40):
            queue.push(mkpkt(d))
        assert [queue.pop().deadline for _ in range(5)] == [10, 20, 30, 40, 50]

    @given(st.lists(st.integers(0, 1000), max_size=40))
    def test_matches_abstract_heap(self, deadlines):
        pipelined = PipelinedHeapQueue(settle_cycles=0)
        abstract = EDFHeapQueue()
        for d in deadlines:
            pkt = mkpkt(d)
            pipelined.push(pkt)
            abstract.push(pkt)
        out_p = [pipelined.pop().uid for _ in range(len(deadlines))]
        out_a = [abstract.pop().uid for _ in range(len(deadlines))]
        assert out_p == out_a

    def test_byte_accounting(self):
        queue = PipelinedHeapQueue(settle_cycles=0)
        queue.push(mkpkt(1, size=300))
        assert queue.used_bytes == 300
        queue.pop()
        assert queue.used_bytes == 0


class TestPipelineTiming:
    def test_fresh_insert_invisible_until_settled(self):
        clock = FakeClock()
        queue = PipelinedHeapQueue(now_fn=clock, depth=8)
        queue.push(mkpkt(500))
        clock.now = 10  # settled (>= 8 cycles)
        queue.head()
        # A better packet arrives but has not settled: the old head wins.
        better = mkpkt(10)
        queue.push(better)
        assert queue.head().deadline == 500
        clock.now = 18  # insert from t=10 settles at t=18
        assert queue.head() is better

    def test_unsettled_counter(self):
        clock = FakeClock()
        queue = PipelinedHeapQueue(now_fn=clock, depth=4)
        queue.push(mkpkt(1))
        queue.push(mkpkt(2))
        assert queue.unsettled == 2
        clock.now = 4
        assert queue.unsettled == 0

    def test_empty_heap_bypass(self):
        """An empty heap exposes the in-flight insert immediately (the
        root register is free), so the port never idles artificially."""
        clock = FakeClock()
        queue = PipelinedHeapQueue(now_fn=clock, depth=8)
        pkt = mkpkt(42)
        queue.push(pkt)
        assert queue.head() is pkt  # despite not being settled
        assert queue.pop() is pkt

    def test_len_includes_staging(self):
        clock = FakeClock()
        queue = PipelinedHeapQueue(now_fn=clock, depth=8)
        queue.push(mkpkt(1))
        queue.push(mkpkt(2))
        assert len(queue) == 2
        assert sorted(p.deadline for p in queue) == [1, 2]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PipelinedHeapQueue().pop()


class TestHardwareModel:
    def test_levels_for_capacity(self):
        assert PipelinedHeapQueue.levels_for(1) == 1
        assert PipelinedHeapQueue.levels_for(7) == 3
        assert PipelinedHeapQueue.levels_for(128) == 8

    def test_levels_validation(self):
        with pytest.raises(ValueError):
            PipelinedHeapQueue.levels_for(0)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PipelinedHeapQueue(depth=0)


class TestArchitecturePreset:
    def test_registered(self):
        from repro.core.architectures import ARCHITECTURES, IDEAL_PIPELINED

        assert ARCHITECTURES["ideal-pipelined"] is IDEAL_PIPELINED
        queue = IDEAL_PIPELINED.make_queue(None)
        assert isinstance(queue, PipelinedHeapQueue)

    def test_switch_binds_clock(self, engine):
        from repro.core.architectures import IDEAL_PIPELINED
        from repro.network.switch import Switch

        switch = Switch(engine, "sw", 4, IDEAL_PIPELINED)
        queue = switch.voq(0, 1, 0)
        engine.at(123, lambda: None)
        engine.run_all()
        assert queue.now_fn() == 123  # bound to the engine clock

    def test_full_fabric_run_matches_ideal_closely(self, tiny_topology):
        """The settle window (8 ns) is ~250x smaller than an MTU
        serialization, so the pipelined heap's end-to-end results track
        the abstract Ideal within noise -- the paper's objection to it is
        silicon cost, not timing, and this shows why."""
        from repro.core.architectures import ARCHITECTURES
        from repro.experiments.config import scaled_video_mix
        from repro.network.fabric import Fabric
        from repro.sim.rng import RandomStreams
        from repro.stats.collectors import MetricsCollector
        from repro.traffic.mix import build_mix

        means = {}
        for arch in ("ideal", "ideal-pipelined"):
            fabric = Fabric(tiny_topology, ARCHITECTURES[arch])
            collector = MetricsCollector(warmup_ns=100_000)
            fabric.subscribe_delivery(collector.on_delivery)
            mix = build_mix(fabric, RandomStreams(5), scaled_video_mix(0.8, 0.02))
            mix.start()
            fabric.run(until=400_000)
            collector.finalize(fabric.engine.now)
            means[arch] = collector.get("control").packet_latency.mean
        assert means["ideal-pipelined"] == pytest.approx(means["ideal"], rel=0.1)
