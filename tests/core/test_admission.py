"""Tests for centralized admission control."""

from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.core.admission import AdmissionController, AdmissionError
from repro.sim import units


@dataclass(frozen=True)
class FakePath:
    ports: Tuple[int, ...]
    links: Tuple[str, ...]


def two_parallel_paths(src, dst):
    """Two disjoint candidate paths, as a MIN with two spines offers."""
    return (
        FakePath(ports=(0,), links=(f"{src}-A", f"A-{dst}")),
        FakePath(ports=(1,), links=(f"{src}-B", f"B-{dst}")),
    )


def single_shared_path(src, dst):
    return (FakePath(ports=(0,), links=("shared",)),)


class TestReservation:
    def test_reserve_returns_a_path(self):
        ctl = AdmissionController(two_parallel_paths, link_capacity=1.0)
        res = ctl.reserve(1, 0, 1, 0.5)
        assert res.flow_id == 1
        assert res.bw_bytes_per_ns == 0.5
        assert ctl.reservation_count == 1

    def test_load_balances_across_candidates(self):
        ctl = AdmissionController(two_parallel_paths, link_capacity=1.0)
        first = ctl.reserve(1, 0, 1, 0.4)
        second = ctl.reserve(2, 0, 1, 0.4)
        assert first.path.links != second.path.links  # spread over both spines

    def test_rejects_when_full(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        ctl.reserve(1, 0, 1, 0.7)
        with pytest.raises(AdmissionError):
            ctl.reserve(2, 0, 1, 0.7)

    def test_accepts_exactly_to_capacity(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        ctl.reserve(1, 0, 1, 0.6)
        ctl.reserve(2, 0, 1, 0.4)  # 100% exactly: allowed at max_utilization=1
        with pytest.raises(AdmissionError):
            ctl.reserve(3, 0, 1, 0.0001)

    def test_max_utilization_ceiling(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0, max_utilization=0.5)
        ctl.reserve(1, 0, 1, 0.5)
        with pytest.raises(AdmissionError):
            ctl.reserve(2, 0, 1, 0.01)

    def test_duplicate_flow_id_rejected(self):
        ctl = AdmissionController(two_parallel_paths, link_capacity=1.0)
        ctl.reserve(1, 0, 1, 0.1)
        with pytest.raises(AdmissionError):
            ctl.reserve(1, 0, 1, 0.1)

    def test_non_positive_bandwidth_rejected(self):
        ctl = AdmissionController(two_parallel_paths, link_capacity=1.0)
        with pytest.raises(ValueError):
            ctl.reserve(1, 0, 1, 0.0)

    def test_no_route_raises(self):
        ctl = AdmissionController(lambda s, d: (), link_capacity=1.0)
        with pytest.raises(AdmissionError):
            ctl.reserve(1, 0, 1, 0.1)


class TestRelease:
    def test_release_returns_bandwidth(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        ctl.reserve(1, 0, 1, 1.0)
        ctl.release(1)
        ctl.reserve(2, 0, 1, 1.0)  # fits again

    def test_release_unknown_flow_raises(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        with pytest.raises(AdmissionError):
            ctl.release(99)

    def test_release_clears_float_dust(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        for i in range(10):
            ctl.reserve(i, 0, 1, 0.1)
        for i in range(10):
            ctl.release(i)
        assert ctl.reserved["shared"] == 0.0

    def test_repeated_reserve_release_is_exactly_zero(self):
        # The ledger is integer bytes/second: cycling awkward float
        # rates (1/3 B/ns has no finite binary representation) must
        # return every link to exactly zero -- not approximately.
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        rates = [units.gbps(8.0) / 3.0, 0.1, 0.2, 1.0 / 7.0]
        for cycle in range(25):
            for i, rate in enumerate(rates):
                ctl.reserve(cycle * len(rates) + i, 0, 1, rate)
            for i in range(len(rates)):
                ctl.release(cycle * len(rates) + i)
            assert ctl.reserved["shared"] == 0
        assert ctl.utilization("shared") == 0.0

    def test_utilization_query(self):
        ctl = AdmissionController(single_shared_path, link_capacity=2.0)
        ctl.reserve(1, 0, 1, 1.0)
        assert ctl.utilization("shared") == pytest.approx(0.5)


class TestBestEffortAssignment:
    def test_assign_path_never_rejects(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        for i in range(50):  # far beyond capacity: best-effort is unregulated
            ctl.assign_path(0, 1, weight=1.0)

    def test_assign_path_balances_by_weight(self):
        ctl = AdmissionController(two_parallel_paths, link_capacity=1.0)
        chosen = [tuple(ctl.assign_path(0, 1, weight=1.0).links) for _ in range(4)]
        # Alternates between the two candidates.
        assert len(set(chosen)) == 2
        assert chosen[0] != chosen[1]

    def test_assignment_does_not_consume_reserved_capacity(self):
        ctl = AdmissionController(single_shared_path, link_capacity=1.0)
        ctl.assign_path(0, 1, weight=100.0)
        ctl.reserve(1, 0, 1, 1.0)  # still fully reservable

    def test_no_route_raises(self):
        ctl = AdmissionController(lambda s, d: (), link_capacity=1.0)
        with pytest.raises(AdmissionError):
            ctl.assign_path(0, 1)


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(two_parallel_paths, link_capacity=0.0)

    def test_bad_ceiling(self):
        with pytest.raises(ValueError):
            AdmissionController(two_parallel_paths, link_capacity=1.0, max_utilization=0.0)
        with pytest.raises(ValueError):
            AdmissionController(two_parallel_paths, link_capacity=1.0, max_utilization=1.5)
