"""Property-based verification of the appendix's theorems.

The paper proves four results about the ordered/take-over queue pair
(Definitions 1-2): Theorem 1 (the L queue is deadline-sorted), Theorem 2
(the system's maximum deadline sits at L's tail), Lemma 1 (packets never
exist only in U), and Theorem 3 (no out-of-order delivery within a flow,
given senders that emit in-order with strictly increasing deadlines --
hypotheses Eq. 1-2).

Here hypothesis generates thousands of adversarial arrival/departure
interleavings and checks each theorem as an executable invariant after
every operation.  Theorems 1, 2 and Lemma 1 are *structural*: they must
hold for arbitrary arrival deadlines, so that group draws unconstrained
deadlines.  Theorem 3's guarantee is conditional on Eq. 1-2, so that
test generates per-flow increasing deadline chains and interleaves flows
arbitrarily.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import EDFHeapQueue, TakeOverQueue
from tests.helpers import mkpkt

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

#: arbitrary arrival deadlines interleaved with pops: True = pop (if any)
ops_any = st.lists(
    st.one_of(st.integers(0, 200), st.just("pop")),
    min_size=0,
    max_size=60,
)


@st.composite
def flow_interleavings(draw):
    """Arrivals from several flows satisfying Eq. 1-2, plus pop points.

    Returns a list of ('push', flow_id, deadline) / ('pop',) operations in
    which each flow's packets appear in increasing-deadline order.
    """
    n_flows = draw(st.integers(1, 4))
    chains = []
    for flow_id in range(n_flows):
        length = draw(st.integers(0, 12))
        start = draw(st.integers(0, 50))
        increments = draw(
            st.lists(st.integers(1, 40), min_size=length, max_size=length)
        )
        deadlines = list(itertools.accumulate(increments, initial=start))[1:]
        chains.append([("push", flow_id, d) for d in deadlines])
    # Interleave the chains: draw a multiset permutation as repeated choice.
    ops = []
    cursors = [0] * n_flows
    remaining = sum(len(c) for c in chains)
    while remaining:
        live = [j for j in range(n_flows) if cursors[j] < len(chains[j])]
        j = live[draw(st.integers(0, len(live) - 1))]
        ops.append(chains[j][cursors[j]])
        cursors[j] += 1
        remaining -= 1
        if draw(st.booleans()):
            ops.append(("pop",))
    # Drain at the end so departure order is total.
    ops.extend([("pop",)] * (sum(len(c) for c in chains) + 2))
    return ops


# ----------------------------------------------------------------------
# structural invariants (Theorems 1-2, Lemma 1): arbitrary deadlines
# ----------------------------------------------------------------------
def check_structural_invariants(queue: TakeOverQueue) -> None:
    lower = queue.ordered_snapshot
    upper = queue.takeover_snapshot
    # Theorem 1: L is deadline-sorted.
    for a, b in zip(lower, lower[1:]):
        assert a.deadline <= b.deadline, "Theorem 1 violated: L not sorted"
    # Lemma 1: U non-empty implies L non-empty.
    if upper:
        assert lower, "Lemma 1 violated: packets only in U"
    # Theorem 2: the maximum deadline is L's tail.
    if lower:
        tail = lower[-1].deadline
        assert all(p.deadline <= tail for p in lower), "Theorem 2 violated in L"
        assert all(p.deadline < tail or p.deadline <= tail for p in upper)
        assert all(p.deadline <= tail for p in upper), "Theorem 2 violated in U"


@settings(max_examples=400)
@given(ops_any)
def test_structural_invariants_hold_under_any_workload(ops):
    queue = TakeOverQueue()
    for op in ops:
        if op == "pop":
            if queue:
                queue.pop()
        else:
            queue.push(mkpkt(op))
        check_structural_invariants(queue)


@settings(max_examples=300)
@given(ops_any)
def test_byte_accounting_never_negative(ops):
    queue = TakeOverQueue()
    expected = 0
    for op in ops:
        if op == "pop":
            if queue:
                expected -= queue.pop().size
        else:
            pkt = mkpkt(op, size=17)
            queue.push(pkt)
            expected += pkt.size
        assert queue.used_bytes == expected >= 0


# ----------------------------------------------------------------------
# Theorem 3: no out-of-order delivery (needs Eq. 1-2)
# ----------------------------------------------------------------------
@settings(max_examples=400)
@given(flow_interleavings())
def test_no_out_of_order_delivery(ops):
    queue = TakeOverQueue()
    arrival_seq: dict[int, int] = {}
    departures: dict[int, list[int]] = {}
    for op in ops:
        if op[0] == "push":
            _, flow_id, deadline = op
            seq = arrival_seq.get(flow_id, 0)
            arrival_seq[flow_id] = seq + 1
            queue.push(mkpkt(deadline, flow_id=flow_id, seq=seq))
        else:
            if queue:
                pkt = queue.pop()
                departures.setdefault(pkt.flow_id, []).append(pkt.seq)
    assert not queue, "drain pops at the end must empty the queue"
    for flow_id, seqs in departures.items():
        assert seqs == sorted(seqs), (
            f"Theorem 3 violated: flow {flow_id} departed in order {seqs}"
        )


@settings(max_examples=300)
@given(flow_interleavings())
def test_takeover_departures_match_edf_heap_no_worse_than_fifo(ops):
    """The take-over queue's dequeue sequence is deadline-wise at least as
    good as FIFO's: the sum of 'sortedness violations' (inversions by
    deadline) in the departure order never exceeds FIFO's."""
    takeover = TakeOverQueue()
    fifo_order = []
    takeover_out = []
    for op in ops:
        if op[0] == "push":
            _, flow_id, deadline = op
            pkt = mkpkt(deadline, flow_id=flow_id)
            takeover.push(pkt)
            fifo_order.append(deadline)
        else:
            if takeover:
                takeover_out.append(takeover.pop().deadline)

    def inversions(seq):
        return sum(
            1
            for i in range(len(seq))
            for j in range(i + 1, len(seq))
            if seq[i] > seq[j]
        )

    # The final drain dequeues everything, so compare full sequences.
    assert sorted(takeover_out) == sorted(fifo_order)
    assert inversions(takeover_out) <= inversions(fifo_order)


@settings(max_examples=300)
@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 64)), max_size=50))
def test_heap_queue_pops_in_exact_deadline_order(entries):
    """The Ideal architecture's buffer is exact EDF with FIFO tie-breaks."""
    queue = EDFHeapQueue()
    pkts = [mkpkt(d, size=s) for d, s in entries]
    for pkt in pkts:
        queue.push(pkt)
    out = [queue.pop() for _ in range(len(pkts))]
    assert [(p.deadline, p.uid) for p in out] == sorted(
        (p.deadline, p.uid) for p in pkts
    )
