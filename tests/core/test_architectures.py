"""Tests for the architecture presets (Section 4.1's four configurations)."""

import pytest

from repro.core.architectures import (
    ADVANCED_2VC,
    ARCHITECTURES,
    IDEAL,
    SIMPLE_2VC,
    TRADITIONAL_2VC,
    get_architecture,
)
from repro.core.arbiter import EDFPicker, RoundRobinPicker
from repro.core.queues import EDFHeapQueue, FifoQueue, TakeOverQueue


class TestPresetTable:
    def test_all_presets_exist(self):
        # The paper's four, plus the hardware-honest Ideal realization.
        assert set(ARCHITECTURES) == {
            "traditional-2vc",
            "ideal",
            "simple-2vc",
            "advanced-2vc",
            "ideal-pipelined",
        }

    @pytest.mark.parametrize(
        "arch,queue_cls,picker_cls,host_edf",
        [
            (TRADITIONAL_2VC, FifoQueue, RoundRobinPicker, False),
            (IDEAL, EDFHeapQueue, EDFPicker, True),
            (SIMPLE_2VC, FifoQueue, EDFPicker, True),
            (ADVANCED_2VC, TakeOverQueue, EDFPicker, True),
        ],
    )
    def test_preset_components(self, arch, queue_cls, picker_cls, host_edf):
        assert type(arch.make_queue(None)) is queue_cls
        assert type(arch.make_picker()) is picker_cls
        assert arch.host_edf is host_edf

    def test_only_traditional_masks_credits(self):
        # The appendix's proof requires the EDF architectures to check
        # credits on the single chosen candidate only.
        assert TRADITIONAL_2VC.credit_masking is True
        assert IDEAL.credit_masking is False
        assert SIMPLE_2VC.credit_masking is False
        assert ADVANCED_2VC.credit_masking is False

    def test_queue_factory_respects_capacity(self):
        q = ADVANCED_2VC.make_queue(4096)
        assert q.capacity_bytes == 4096

    def test_pickers_are_fresh_instances(self):
        # Round-robin pointers are per output port; sharing one picker
        # across ports would corrupt rotation state.
        a = TRADITIONAL_2VC.make_picker()
        b = TRADITIONAL_2VC.make_picker()
        assert a is not b

    def test_labels_match_paper_figures(self):
        assert TRADITIONAL_2VC.label == "Traditional 2 VCs"
        assert IDEAL.label == "Ideal"
        assert SIMPLE_2VC.label == "Simple 2 VCs"
        assert ADVANCED_2VC.label == "Advanced 2 VCs"


class TestLookup:
    def test_get_architecture(self):
        assert get_architecture("ideal") is IDEAL

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="advanced-2vc"):
            get_architecture("nope")
