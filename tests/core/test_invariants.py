"""Tests for repro.core.invariants -- including survival under ``python -O``.

The whole point of ``invariant()`` is that, unlike a bare ``assert``,
the Lemma 1 / Definition 1 checks in the take-over queue keep firing
when python strips assert statements.  The subprocess tests here run
real optimized interpreters to prove it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.invariants import InvariantViolation, invariant

REPO_ROOT = Path(__file__).resolve().parents[2]


def _env_with_src() -> dict:
    env = os.environ.copy()
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestInvariantHelper:
    def test_truthy_condition_is_a_no_op(self):
        invariant(True, "never raised")
        invariant([1], "truthy container ok")
        invariant(1, "truthy int ok")

    def test_falsy_condition_raises_typed_violation(self):
        with pytest.raises(InvariantViolation, match="queue broke"):
            invariant(False, "queue broke")
        with pytest.raises(InvariantViolation):
            invariant([], "empty container is falsy")

    def test_violation_is_an_assertion_error(self):
        # Callers (and old tests) that catch AssertionError keep working.
        assert issubclass(InvariantViolation, AssertionError)
        with pytest.raises(AssertionError):
            invariant(False, "still an assertion")

    def test_lazy_percent_formatting(self):
        with pytest.raises(InvariantViolation, match=r"flow 7 at t=42"):
            invariant(False, "flow %d at t=%d", 7, 42)

    def test_message_with_literal_percent_and_no_args(self):
        # No args -> no formatting pass, so a literal % is safe.
        with pytest.raises(InvariantViolation, match="100%"):
            invariant(False, "load hit 100%")


class TestLemma1UnderOptimization:
    """The acceptance criterion: invariants hold with ``python -O``."""

    def test_takeover_invariant_enforced_under_dash_O(self):
        """Corrupt a TakeOverQueue into a Lemma 1-violating state inside
        an optimized interpreter; the typed invariant must still fire.
        (A bare assert would be compiled away and return None happily.)

        The probe script avoids `assert` entirely -- under -O it would
        vanish -- and communicates through exit codes.
        """
        probe = (
            "import sys\n"
            "from repro.core.invariants import InvariantViolation\n"
            "from repro.core.queues.takeover import TakeOverQueue\n"
            "from tests.helpers import mkpkt\n"
            "if sys.flags.optimize != 1:\n"
            "    sys.exit(3)  # not actually running optimized\n"
            "q = TakeOverQueue()\n"
            "q._upper.append(mkpkt(5))  # force 'packets only in U'\n"
            "try:\n"
            "    q.head()\n"
            "except InvariantViolation:\n"
            "    sys.exit(0)\n"
            "sys.exit(4)  # invariant did not fire\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", probe],
            cwd=REPO_ROOT,
            env=_env_with_src(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, (
            f"probe exited {result.returncode}\n"
            f"stdout: {result.stdout}\nstderr: {result.stderr}"
        )

    def test_takeover_property_suite_passes_under_dash_O(self):
        """The full Theorems 1-3 / Lemma 1 property suite must pass with
        optimization on: pytest's assertion rewriting keeps the *test*
        asserts alive, and invariant() keeps the *library* checks alive."""
        result = subprocess.run(
            [
                sys.executable,
                "-O",
                "-m",
                "pytest",
                "-q",
                "-p",
                "no:cacheprovider",
                "tests/core/test_takeover_properties.py",
            ],
            cwd=REPO_ROOT,
            env=_env_with_src(),
            capture_output=True,
            text=True,
            timeout=560,
        )
        assert result.returncode == 0, (
            f"property suite failed under -O\n"
            f"stdout: {result.stdout}\nstderr: {result.stderr}"
        )
