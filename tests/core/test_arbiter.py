"""Tests for the output-port pickers."""

from repro.core.arbiter import EDFPicker, RoundRobinPicker
from repro.core.queues import FifoQueue
from tests.helpers import mkpkt


def queues_with(*deadline_lists):
    qs = []
    for deadlines in deadline_lists:
        q = FifoQueue()
        for d in deadlines:
            q.push(mkpkt(d))
        qs.append(q)
    return qs


class TestEDFPicker:
    def test_picks_min_deadline_head(self):
        qs = queues_with([30], [10], [20])
        assert EDFPicker().pick(qs) == 1

    def test_only_heads_are_inspected(self):
        # Queue 0 hides a deadline-1 packet behind its head; the picker must
        # not see it (the paper's implementability constraint).
        qs = queues_with([100, 1], [50])
        assert EDFPicker().pick(qs) == 1

    def test_skips_empty_queues(self):
        qs = queues_with([], [40], [])
        assert EDFPicker().pick(qs) == 1

    def test_all_empty_returns_none(self):
        assert EDFPicker().pick(queues_with([], [])) is None

    def test_tie_breaks_by_arrival_order(self):
        q_late, q_early = FifoQueue(), FifoQueue()
        late = mkpkt(5)
        early_uid_wins = mkpkt(5)
        # mkpkt uid increments globally: 'late' was created first
        q_late.push(late)
        q_early.push(early_uid_wins)
        assert EDFPicker().pick([q_early, q_late]) == 1  # older packet wins

    def test_sendable_predicate_filters(self):
        qs = queues_with([10], [20])
        picker = EDFPicker()
        assert picker.pick(qs, sendable=lambda h: h.deadline != 10) == 1
        assert picker.pick(qs, sendable=lambda h: False) is None

    def test_granted_is_noop(self):
        EDFPicker().granted(3)  # stateless; must not raise


class TestRoundRobinPicker:
    def test_rotates_after_grant(self):
        qs = queues_with([1], [1], [1])
        picker = RoundRobinPicker()
        order = []
        for _ in range(3):
            idx = picker.pick(qs)
            order.append(idx)
            qs[idx].pop()
            picker.granted(idx)
        assert order == [0, 1, 2]

    def test_pick_without_grant_does_not_advance(self):
        qs = queues_with([1], [1])
        picker = RoundRobinPicker()
        assert picker.pick(qs) == 0
        assert picker.pick(qs) == 0  # no grant, pointer unchanged

    def test_skips_empty_queues(self):
        qs = queues_with([], [7])
        assert RoundRobinPicker().pick(qs) == 1

    def test_wraps_around(self):
        qs = queues_with([1], [1])
        picker = RoundRobinPicker()
        picker.granted(1)  # pointer now past the last queue
        assert picker.pick(qs) == 0

    def test_deadline_blind(self):
        qs = queues_with([1_000_000], [1])
        assert RoundRobinPicker().pick(qs) == 0  # ignores deadlines entirely

    def test_empty_candidate_list(self):
        assert RoundRobinPicker().pick([]) is None

    def test_sendable_predicate(self):
        qs = queues_with([10], [20])
        picker = RoundRobinPicker()
        assert picker.pick(qs, sendable=lambda h: h.deadline == 20) == 1

    def test_long_run_fairness(self):
        """Backlogged queues get equal grants over a full rotation cycle."""
        qs = queues_with([1] * 30, [1] * 30, [1] * 30)
        picker = RoundRobinPicker()
        grants = [0, 0, 0]
        for _ in range(30):
            idx = picker.pick(qs)
            qs[idx].pop()
            picker.granted(idx)
            grants[idx] += 1
        assert grants == [10, 10, 10]
