"""Tests for the time-to-destination clock trick (Section 3.3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ttd import ClockDomain, deadline_from_ttd, ttd_from_deadline


class TestHeaderOps:
    def test_roundtrip_same_clock(self):
        ttd = ttd_from_deadline(10_000, 4_000)
        assert ttd == 6_000
        assert deadline_from_ttd(ttd, 4_000) == 10_000

    def test_ttd_can_be_negative_for_late_packets(self):
        assert ttd_from_deadline(100, 500) == -400

    def test_rebase_shifts_by_offset_difference(self):
        clocks = ClockDomain({"a": 100, "b": -250})
        # A deadline expressed on a's clock moves to b's clock shifted by
        # (offset_b - offset_a).
        assert clocks.rebase(10_000, "a", "b", true_time=777) == 10_000 - 350

    def test_unknown_nodes_default_to_zero_offset(self):
        clocks = ClockDomain()
        assert clocks.rebase(5_000, "x", "y", true_time=123) == 5_000

    def test_local_time(self):
        clocks = ClockDomain({"n": 42})
        assert clocks.local_time("n", 1000) == 1042


class TestEquivalenceProperties:
    @given(
        deadline=st.integers(0, 10**12),
        offset_a=st.integers(-10**9, 10**9),
        offset_b=st.integers(-10**9, 10**9),
        t1=st.integers(0, 10**12),
        t2=st.integers(0, 10**12),
    )
    def test_rebase_is_independent_of_handoff_time(
        self, deadline, offset_a, offset_b, t1, t2
    ):
        """Both clocks tick at the same rate, so *when* the TTD is computed
        does not matter -- the paper's argument for needing no sync."""
        clocks = ClockDomain({"a": offset_a, "b": offset_b})
        assert clocks.rebase(deadline, "a", "b", t1) == clocks.rebase(
            deadline, "a", "b", t2
        )

    @given(
        deadlines=st.lists(st.integers(0, 10**9), min_size=2, max_size=20),
        offsets=st.lists(st.integers(-10**6, 10**6), min_size=3, max_size=3),
        true_time=st.integers(0, 10**9),
    )
    def test_relative_order_preserved_across_hops(self, deadlines, offsets, true_time):
        """EDF only compares deadlines *at one node*; rebasing shifts every
        deadline there by the same constant, so comparisons are invariant --
        scheduling under TTD encoding equals scheduling under global time."""
        clocks = ClockDomain({"src": offsets[0], "mid": offsets[1], "dst": offsets[2]})
        hopped = [
            clocks.rebase(
                clocks.rebase(d, "src", "mid", true_time), "mid", "dst", true_time
            )
            for d in deadlines
        ]
        order_before = sorted(range(len(deadlines)), key=lambda i: deadlines[i])
        order_after = sorted(range(len(hopped)), key=lambda i: hopped[i])
        assert order_before == order_after

    @given(
        deadline=st.integers(0, 10**9),
        chain=st.lists(st.integers(-10**6, 10**6), min_size=2, max_size=8),
        true_time=st.integers(0, 10**9),
    )
    def test_multi_hop_rebase_telescopes(self, deadline, chain, true_time):
        """Hop-by-hop rebasing equals one direct rebase src->dst."""
        nodes = {f"n{i}": off for i, off in enumerate(chain)}
        clocks = ClockDomain(nodes)
        value = deadline
        names = list(nodes)
        for a, b in zip(names, names[1:]):
            value = clocks.rebase(value, a, b, true_time)
        assert value == clocks.rebase(deadline, names[0], names[-1], true_time)
