#!/usr/bin/env python
"""Engine dispatch benchmark: measure, emit BENCH_engine.json, gate.

Usage::

    python scripts/bench_engine.py [--out BENCH_engine.json]
        [--baseline benchmarks/BENCH_engine_baseline.json]
        [--rounds 5] [--no-gate]

Times the three engine workloads from ``benchmarks/test_bench_micro.py``
(serial chain dispatch, tombstone-heavy cancel/reschedule, mixed
near/far horizon) on both the production timing-wheel engine and the
binary-heap reference, interleaved min-of-N in one process.

The emitted JSON records absolute events/sec for the log, but the
regression gate compares **wheel/heap ratios** against the checked-in
baseline: CI runners swing +/-30% in absolute wall-clock between jobs,
while the interleaved ratio is stable to a few percent.  The gate fails
when any workload's ratio drops more than 20% below its baseline ratio
-- for the chain-dispatch workload that is the ">=2x events/sec"
headline claim decaying, which must never happen silently.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.engine import Engine  # noqa: E402
from repro.sim.heap_engine import HeapEngine  # noqa: E402

#: Gate: fail when a workload ratio falls below baseline_ratio * (1 - this).
REGRESSION_BUDGET = 0.20


def _load_workloads():
    spec = importlib.util.spec_from_file_location(
        "bench_micro", REPO_ROOT / "benchmarks" / "test_bench_micro.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return {
        "chain_dispatch": (module._chain_dispatch, module.N_EVENTS + 1),
        "tombstone_churn": (module._tombstone_churn, module.N_PACKETS + 1),
        "mixed_horizon": (
            module._mixed_horizon,
            module.N_PACKETS + module.N_PACKETS // 8 + 1,
        ),
    }


def measure(rounds: int) -> dict:
    results = {}
    for name, (workload, expected_events) in _load_workloads().items():
        wheel = heap = float("inf")
        events = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            events = workload(Engine)
            wheel = min(wheel, time.perf_counter() - t0)
            t0 = time.perf_counter()
            heap_events = workload(HeapEngine)
            heap = min(heap, time.perf_counter() - t0)
        if events != expected_events or heap_events != expected_events:
            raise SystemExit(
                f"{name}: executed {events}/{heap_events} events, "
                f"expected {expected_events} -- workload changed shape?"
            )
        results[name] = {
            "events": events,
            "wheel_seconds": round(wheel, 6),
            "heap_seconds": round(heap, 6),
            "wheel_events_per_sec": round(events / wheel),
            "heap_events_per_sec": round(events / heap),
            "ratio_wheel_over_heap": round(heap / wheel, 4),
        }
    return results


def gate(results: dict, baseline: dict) -> list:
    failures = []
    for name, entry in baseline["workloads"].items():
        if name not in results:
            failures.append(f"workload {name!r} in baseline but not measured")
            continue
        floor = entry["ratio_wheel_over_heap"] * (1.0 - REGRESSION_BUDGET)
        measured = results[name]["ratio_wheel_over_heap"]
        if measured < floor:
            failures.append(
                f"{name}: wheel/heap ratio {measured:.2f} fell below "
                f"{floor:.2f} (baseline {entry['ratio_wheel_over_heap']:.2f} "
                f"- {REGRESSION_BUDGET:.0%} budget)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks" / "BENCH_engine_baseline.json"),
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and emit only (used to regenerate the baseline)",
    )
    args = parser.parse_args(argv)

    results = measure(args.rounds)
    doc = {
        "schema": 1,
        "python": sys.version.split()[0],
        "rounds": args.rounds,
        "workloads": results,
    }
    with open(args.out, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")

    for name, entry in results.items():
        print(
            f"{name:>16}: wheel {entry['wheel_events_per_sec'] / 1e6:6.2f} M ev/s  "
            f"heap {entry['heap_events_per_sec'] / 1e6:6.2f} M ev/s  "
            f"ratio {entry['ratio_wheel_over_heap']:.2f}x"
        )

    if args.no_gate:
        return 0
    with open(args.baseline, "r", encoding="utf-8") as fp:
        baseline = json.load(fp)
    failures = gate(results, baseline)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
