#!/usr/bin/env python
"""512-endpoint scale smoke: measure, emit BENCH_scale.json, gate.

Usage::

    python scripts/bench_scale.py [--out BENCH_scale.json] [--no-gate]
        [--warmup-us 10] [--measure-us 20]

Runs the ``scale512`` preset (32 leaves x 16 hosts, 16 spines -- 4x the
paper's fabric) twice: once plain for an honest events/sec figure, and
once under ``tracemalloc`` for peak and end-of-run live bytes.  This is
the runtime counterpart of the SIM5xx scale-soundness lint pass: the
lint proves no per-class container grows without bound, the benchmark
proves the whole assembled fabric's footprint and throughput stay
inside fixed budgets at 512 endpoints.

Gates (absolute, generous headroom -- this is a smoke, not a perf
race):

* peak tracemalloc bytes  <= PEAK_BYTES_CEILING.  Peak is dominated by
  deterministic setup (route precompute, per-port VOQ tables), so it is
  stable across runners in a way wall-clock is not.
* end-of-run live bytes   <= LIVE_BYTES_CEILING.  The leak gate: after
  the engine drains, only the collectors' aggregates may remain.  An
  unbounded container that survives the run shows up here first.
* plain-run events/sec    >= EVENTS_PER_SEC_FLOOR.  Set ~5x below the
  measured rate so only a pathological slowdown (e.g. an accidental
  O(n) hot-path membership scan) trips it.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec.summary import execute_config  # noqa: E402
from repro.experiments.config import (  # noqa: E402
    ExperimentConfig,
    scaled_video_mix,
)
from repro.sim import units  # noqa: E402

#: ~400 MB measured at the default window; +50% headroom.
PEAK_BYTES_CEILING = 600 * 1024 * 1024
#: ~0.8 MB measured live after the run; an order of magnitude headroom.
LIVE_BYTES_CEILING = 8 * 1024 * 1024
#: ~23k ev/s measured on a plain run; only a pathology goes below this.
EVENTS_PER_SEC_FLOOR = 4000


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        architecture="advanced-2vc",
        load=1.0,
        topology="scale512",
        warmup_ns=round(args.warmup_us * units.US),
        measure_ns=round(args.measure_us * units.US),
        mix=scaled_video_mix(1.0, 0.02),
        seed=1,
    )


def measure(args: argparse.Namespace) -> dict:
    config = _config(args)

    t0 = time.perf_counter()
    plain = execute_config(config)
    plain_wall = time.perf_counter() - t0

    tracemalloc.start()
    t0 = time.perf_counter()
    traced = execute_config(config)
    traced_wall = time.perf_counter() - t0
    # The fabric's object graph has cycles; collect them so live bytes
    # measure what is genuinely retained, not what awaits the next GC.
    gc.collect()
    live_bytes, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    if traced.events_executed != plain.events_executed:
        raise SystemExit(
            f"traced run executed {traced.events_executed} events, plain "
            f"{plain.events_executed} -- determinism broke"
        )
    return {
        "endpoints": 512,
        "events": plain.events_executed,
        "plain_seconds": round(plain_wall, 3),
        "events_per_sec": round(plain.events_executed / plain_wall),
        "traced_seconds": round(traced_wall, 3),
        "peak_tracemalloc_bytes": peak_bytes,
        "live_bytes_after_run": live_bytes,
        "bytes_per_event_peak": round(peak_bytes / plain.events_executed, 1),
    }


def gate(results: dict) -> list:
    failures = []
    if results["peak_tracemalloc_bytes"] > PEAK_BYTES_CEILING:
        failures.append(
            f"peak {results['peak_tracemalloc_bytes']:,} bytes exceeds the "
            f"{PEAK_BYTES_CEILING:,} ceiling"
        )
    if results["live_bytes_after_run"] > LIVE_BYTES_CEILING:
        failures.append(
            f"live {results['live_bytes_after_run']:,} bytes after the run "
            f"exceeds the {LIVE_BYTES_CEILING:,} ceiling -- a container "
            "outlived the engine"
        )
    if results["events_per_sec"] < EVENTS_PER_SEC_FLOOR:
        failures.append(
            f"{results['events_per_sec']:,} events/sec fell below the "
            f"{EVENTS_PER_SEC_FLOOR:,} floor"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument("--warmup-us", type=float, default=10.0)
    parser.add_argument("--measure-us", type=float, default=20.0)
    parser.add_argument(
        "--no-gate", action="store_true", help="measure and emit only"
    )
    args = parser.parse_args(argv)

    results = measure(args)
    doc = {
        "schema": 1,
        "python": sys.version.split()[0],
        "topology": "scale512",
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")

    print(
        f"scale512: {results['events']:,} events at "
        f"{results['events_per_sec']:,} ev/s; peak "
        f"{results['peak_tracemalloc_bytes'] / 1e6:.0f} MB, live "
        f"{results['live_bytes_after_run'] / 1e6:.2f} MB after the run"
    )

    if args.no_gate:
        return 0
    failures = gate(results)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
