"""Figure 4: throughput of the two best-effort classes.

Regenerates the two panels (best-effort and background delivered
throughput vs input load) and asserts the figure's point: the EDF-based
architectures differentiate the two classes according to their
deadline-generation weights (2:1 here), while under Traditional 2 VCs
"both classes look the same ... and receive the same performance".
"""

from __future__ import annotations

import pytest

from conftest import LOADS, MEASURE_NS, TIME_SCALE, WARMUP_NS
from repro.experiments.config import scaled_video_mix
from repro.experiments.figures import DEFAULT_ARCHS, fig4_best_effort


@pytest.fixture(scope="module")
def results(standard_sweep):
    return standard_sweep


def test_bench_fig4_best_effort_throughput(benchmark, results):
    series = benchmark.pedantic(
        fig4_best_effort,
        args=(DEFAULT_ARCHS, LOADS),
        kwargs=dict(results=results),
        rounds=1,
        iterations=1,
    )
    print()
    print(series.text())

    def ratio(arch, load):
        result = results[(arch, load)]
        return result.throughput("best-effort") / result.throughput("background")

    top = max(LOADS)
    # EDF architectures: measurable differentiation at saturation.
    for arch in ("ideal", "simple-2vc", "advanced-2vc"):
        assert ratio(arch, top) > 1.15, arch
    # Traditional: the classes are indistinguishable.
    assert ratio("traditional-2vc", top) == pytest.approx(1.0, abs=0.25)

    # At light load everyone delivers what they offer (no differentiation
    # needed): curves start together, which is the left edge of the figure.
    light = min(LOADS)
    for arch in DEFAULT_ARCHS:
        result = results[(arch, light)]
        assert result.normalized_throughput("best-effort") > 0.7
        assert result.normalized_throughput("background") > 0.7


def test_bench_fig4_regulated_unharmed(benchmark, results):
    """The flip side the figure implies: letting best-effort fight for
    leftovers never hurts the admitted classes."""

    def regulated_norms():
        return {
            arch: results[(arch, max(LOADS))].normalized_throughput("multimedia")
            for arch in DEFAULT_ARCHS
        }

    norms = benchmark.pedantic(regulated_norms, rounds=1, iterations=1)
    print()
    for arch, norm in norms.items():
        print(f"  {arch:<16} multimedia delivered/offered = {norm:.3f}")
    for arch, norm in norms.items():
        assert norm > 0.75, arch
