"""Table 1: the injected workload itself.

Regenerates the paper's Table 1 as measured output: per class, the
bandwidth share actually generated, the application frame-size range
observed, and the note-worthy property (latency-critical, MPEG-like,
self-similar).  The benchmark times workload generation + injection on
an otherwise idle engine, which is the fixed cost every experiment pays.
"""

from __future__ import annotations

import pytest

from conftest import TIME_SCALE
from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import scaled_video_mix
from repro.experiments.presets import make_topology
from repro.network.fabric import Fabric
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.report import format_table
from repro.traffic.mix import CLASS_NAMES, build_mix


def generate_workload(topology_name: str, seed: int, horizon_ns: int):
    fabric = Fabric(make_topology(topology_name), ARCHITECTURES["advanced-2vc"])
    mix = build_mix(fabric, RandomStreams(seed), scaled_video_mix(1.0, TIME_SCALE))
    sizes: dict[str, list[int]] = {name: [] for name in CLASS_NAMES}

    original_submit = fabric.submit

    def recording_submit(flow, nbytes):
        sizes[flow.spec.tclass].append(nbytes)
        original_submit(flow, nbytes)

    fabric.submit = recording_submit  # type: ignore[assignment]
    mix.start()
    fabric.run(until=horizon_ns)
    return fabric, mix, sizes


def test_bench_table1_traffic_mix(benchmark, bench_topology, bench_seed):
    horizon = 2_000 * units.US
    fabric, mix, sizes = benchmark.pedantic(
        generate_workload,
        args=(bench_topology, bench_seed, horizon),
        rounds=1,
        iterations=1,
    )
    n_hosts = fabric.topology.n_hosts
    link_bw = fabric.params.bytes_per_ns
    rows = []
    notes = {
        "control": "small control messages",
        "multimedia": f"GoP MPEG-like streams (time-scale {TIME_SCALE})",
        "best-effort": "self-similar, Pareto sizes",
        "background": "self-similar, Pareto sizes",
    }
    for name in CLASS_NAMES:
        offered = mix.offered_bytes(name) / horizon / n_hosts / link_bw
        observed = sizes[name]
        rows.append(
            [
                name,
                f"{offered:.1%}",
                f"[{min(observed)} B, {max(observed) / 1024:.0f} KB]",
                notes[name],
            ]
        )
        # Table 1: every class carries 25% of the bandwidth.
        assert offered == pytest.approx(0.25, rel=0.15), name
    print()
    print(
        format_table(
            ["Name", "% BW (measured)", "application frame", "Notes"],
            rows,
            title="Table 1 -- Traffic injected per host (regenerated)",
        )
    )
    # Frame-size ranges from Table 1.
    assert max(sizes["control"]) <= 2048
    assert min(sizes["control"]) >= 128
    assert max(sizes["multimedia"]) <= 122_880
    assert max(sizes["best-effort"]) <= 102_400
