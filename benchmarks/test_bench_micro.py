"""Microbenchmarks of the hot substrate components.

Not a paper artifact -- these time the pieces every experiment is built
from, so simulator-performance regressions are visible in isolation:

- event kernel dispatch rate (timing wheel vs. the heap reference, with
  interleaved A/B ratio gates pinning the wheel's advantage),
- tombstone-heavy cancel/reschedule and mixed-horizon workloads (the
  wheel's best and worst cases respectively),
- push/pop throughput of the three buffer structures (the FIFO-vs-heap
  cost gap is the paper's implementability argument in microseconds),
- deadline stamping rate,
- up*/down* route enumeration over the paper-size MIN.

The engine A/B gates use the discipline from
``test_bench_obs_overhead.py``: both arms alternate in one process,
min-of-N per arm, and only the *ratio* is asserted -- absolute
wall-clock on a noisy runner swings +/-30%, but the interleaved ratio
is stable to a few percent.
"""

from __future__ import annotations

import random
import time

from repro.core.deadline import RateBasedStamper
from repro.core.queues import EDFHeapQueue, FifoQueue, TakeOverQueue
from repro.network.routing import RoutingTable
from repro.network.topology import paper_topology
from repro.network.packet import Packet
from repro.sim.engine import _DEFAULT_WHEEL_SLOTS, Engine
from repro.sim.heap_engine import HeapEngine


def mkpkt(deadline: int, *, size: int = 256) -> Packet:
    return Packet(
        flow_id=1, seq=0, src=0, dst=1, size=size, vc=0,
        tclass="bench", deadline=deadline,
    )

N_EVENTS = 50_000
N_PACKETS = 20_000


def _chain_dispatch(engine_cls, n=N_EVENTS):
    """Serial event chain: one event in flight at all times (the wheel's
    hot-slot fast path; the dominant shape of link/host timer traffic)."""
    engine = engine_cls()

    def chain(remaining):
        if remaining:
            engine.after(1, chain, remaining - 1)

    engine.at(0, chain, n)
    engine.run_all()
    return engine.events_executed


def _tombstone_churn(engine_cls, n=N_PACKETS):
    """Cancel/reschedule churn: every step arms two cancellable timers
    and cancels one before it fires -- the EDF wakeup-rearm pattern that
    made the old heap drag tombstones through every sift."""
    engine = engine_cls()
    state = {"remaining": n, "doomed": None}

    def crash():  # pragma: no cover - fires only on a cancellation bug
        raise AssertionError("cancelled event fired")

    def step():
        if state["doomed"] is not None:
            state["doomed"].cancel()
        if state["remaining"]:
            state["remaining"] -= 1
            state["doomed"] = engine.after_cancellable(5, crash)
            engine.after(1, step)

    engine.after(0, step)
    engine.run_all()
    return engine.events_executed


def _mixed_horizon(engine_cls, n=N_PACKETS):
    """Near-now chain interleaved with far-future timers that land past
    the wheel horizon -- the overflow heap's worst case (every eighth
    step pays a heap push plus a later drain)."""
    far = _DEFAULT_WHEEL_SLOTS * 3
    engine = engine_cls()
    state = {"remaining": n}

    def far_noop():
        pass

    def near(i):
        if state["remaining"]:
            state["remaining"] -= 1
            engine.after((i * 7) % 1000, near, i + 1)
            if i % 8 == 0:
                engine.after(far + (i % 97), far_noop)

    engine.after(0, near, 1)
    engine.run_all()
    return engine.events_executed


def _ab_ratio(workload, rounds=5):
    """heap/wheel wall-time ratio, interleaved min-of-N (>1 == wheel wins)."""
    wheel = heap = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()  # simlint: allow-wallclock
        workload(Engine)
        wheel = min(wheel, time.perf_counter() - t0)  # simlint: allow-wallclock
        t0 = time.perf_counter()  # simlint: allow-wallclock
        workload(HeapEngine)
        heap = min(heap, time.perf_counter() - t0)  # simlint: allow-wallclock
    return heap / wheel


def test_bench_engine_dispatch(benchmark):
    executed = benchmark(_chain_dispatch, Engine)
    assert executed == N_EVENTS + 1


def test_bench_engine_dispatch_heap_reference(benchmark):
    """The pre-overhaul kernel, timed for history: the dispatch-speedup
    denominators in BENCH_engine.json come from this same workload."""
    executed = benchmark(_chain_dispatch, HeapEngine)
    assert executed == N_EVENTS + 1


def test_bench_engine_tombstone_churn(benchmark):
    assert benchmark(_tombstone_churn, Engine) == N_PACKETS + 1


def test_bench_engine_mixed_horizon(benchmark):
    executed = benchmark(_mixed_horizon, Engine)
    assert executed == N_PACKETS + N_PACKETS // 8 + 1


def test_engine_dispatch_speedup_guard():
    """The tentpole gate: the wheel must dispatch the serial chain at
    >= 2x the heap reference (measured ~2.9x; the margin absorbs runner
    noise without ever letting the headline claim silently rot)."""
    ratio = _ab_ratio(_chain_dispatch)
    assert ratio >= 2.0, (
        f"wheel dispatch speedup degraded to {ratio:.2f}x the heap "
        "reference (claimed >= 2x)"
    )


def test_engine_tombstone_speedup_guard():
    """Cancel/reschedule churn must never be slower on the wheel
    (measured ~1.2x: bucket tombstones skip the heap's sift cost)."""
    ratio = _ab_ratio(_tombstone_churn)
    assert ratio >= 1.0, (
        f"wheel tombstone churn fell to {ratio:.2f}x the heap reference"
    )


def test_engine_mixed_horizon_bounded_regression_guard():
    """The wheel's worst case: far-future events pay overflow-heap push
    + drain, so the wheel is allowed to lose here -- but by a bounded
    margin (measured ~0.9x)."""
    ratio = _ab_ratio(_mixed_horizon)
    assert ratio >= 0.7, (
        f"wheel mixed-horizon throughput fell to {ratio:.2f}x the heap "
        "reference (budget: >= 0.7x)"
    )


def _queue_workload(queue_cls):
    rng = random.Random(42)
    packets = [mkpkt(rng.randrange(1_000_000)) for _ in range(N_PACKETS)]

    def run():
        queue = queue_cls()
        out = 0
        for i, pkt in enumerate(packets):
            queue.push(pkt)
            if i % 3 == 2:  # interleave drains: realistic switch pattern
                queue.pop()
                out += 1
        while queue:
            queue.pop()
            out += 1
        return out

    return run


def test_bench_queue_fifo(benchmark):
    assert benchmark(_queue_workload(FifoQueue)) == N_PACKETS


def test_bench_queue_takeover(benchmark):
    assert benchmark(_queue_workload(TakeOverQueue)) == N_PACKETS


def test_bench_queue_edf_heap(benchmark):
    assert benchmark(_queue_workload(EDFHeapQueue)) == N_PACKETS


def test_bench_deadline_stamping(benchmark):
    def stamp_many():
        stamper = RateBasedStamper(0.25)
        now = 0
        for i in range(N_PACKETS):
            now += 100
            stamper.stamp(now, 2048)
        return stamper.last_deadline

    assert benchmark(stamp_many) > 0


def test_bench_routing_paper_topology(benchmark):
    """Enumerate all candidate paths from one host to every other host of
    the 128-endpoint network (what admission does per flow setup)."""
    topo = paper_topology()

    def enumerate_paths():
        table = RoutingTable(topo)
        count = 0
        for dst in range(1, topo.n_hosts):
            count += len(table.candidates(0, dst))
        return count

    count = benchmark(enumerate_paths)
    # 7 same-leaf destinations with 1 path, 120 cross-leaf with 8 paths.
    assert count == 7 * 1 + 120 * 8
