"""Microbenchmarks of the hot substrate components.

Not a paper artifact -- these time the pieces every experiment is built
from, so simulator-performance regressions are visible in isolation:

- event kernel dispatch rate,
- push/pop throughput of the three buffer structures (the FIFO-vs-heap
  cost gap is the paper's implementability argument in microseconds),
- deadline stamping rate,
- up*/down* route enumeration over the paper-size MIN.
"""

from __future__ import annotations

import random

from repro.core.deadline import RateBasedStamper
from repro.core.queues import EDFHeapQueue, FifoQueue, TakeOverQueue
from repro.network.routing import RoutingTable
from repro.network.topology import paper_topology
from repro.network.packet import Packet
from repro.sim.engine import Engine


def mkpkt(deadline: int, *, size: int = 256) -> Packet:
    return Packet(
        flow_id=1, seq=0, src=0, dst=1, size=size, vc=0,
        tclass="bench", deadline=deadline,
    )

N_EVENTS = 50_000
N_PACKETS = 20_000


def test_bench_engine_dispatch(benchmark):
    def run_events():
        engine = Engine()

        def chain(remaining):
            if remaining:
                engine.after(1, chain, remaining - 1)

        engine.at(0, chain, N_EVENTS)
        engine.run_all()
        return engine.events_executed

    executed = benchmark(run_events)
    assert executed == N_EVENTS + 1


def _queue_workload(queue_cls):
    rng = random.Random(42)
    packets = [mkpkt(rng.randrange(1_000_000)) for _ in range(N_PACKETS)]

    def run():
        queue = queue_cls()
        out = 0
        for i, pkt in enumerate(packets):
            queue.push(pkt)
            if i % 3 == 2:  # interleave drains: realistic switch pattern
                queue.pop()
                out += 1
        while queue:
            queue.pop()
            out += 1
        return out

    return run


def test_bench_queue_fifo(benchmark):
    assert benchmark(_queue_workload(FifoQueue)) == N_PACKETS


def test_bench_queue_takeover(benchmark):
    assert benchmark(_queue_workload(TakeOverQueue)) == N_PACKETS


def test_bench_queue_edf_heap(benchmark):
    assert benchmark(_queue_workload(EDFHeapQueue)) == N_PACKETS


def test_bench_deadline_stamping(benchmark):
    def stamp_many():
        stamper = RateBasedStamper(0.25)
        now = 0
        for i in range(N_PACKETS):
            now += 100
            stamper.stamp(now, 2048)
        return stamper.last_deadline

    assert benchmark(stamp_many) > 0


def test_bench_routing_paper_topology(benchmark):
    """Enumerate all candidate paths from one host to every other host of
    the 128-endpoint network (what admission does per flow setup)."""
    topo = paper_topology()

    def enumerate_paths():
        table = RoutingTable(topo)
        count = 0
        for dst in range(1, topo.n_hosts):
            count += len(table.candidates(0, dst))
        return count

    count = benchmark(enumerate_paths)
    # 7 same-leaf destinations with 1 path, 120 cross-leaf with 8 paths.
    assert count == 7 * 1 + 120 * 8
