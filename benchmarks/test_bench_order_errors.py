"""The Section 3.4 / Section 5 headline numbers.

The paper's summary claim: emulating EDF with plain FIFOs (*Simple*)
costs ~25% extra average latency for the most demanding traffic due to
order errors; adding the take-over queue (*Advanced*) cuts that to ~5%;
and both are far cheaper than the unimplementable heap (*Ideal*) that
they track.

This bench regenerates those ratios from the shared full-load sweep and
prints them next to the paper's numbers.  The asserted bounds are
deliberately looser than the paper's exact factors: order-error
magnitude depends on workload details and network scale (EXPERIMENTS.md
tabulates paper-vs-measured), but the *ordering* -- Ideal <= Advanced <=
Simple << Traditional -- is asserted strictly.
"""

from __future__ import annotations

from conftest import LOADS
from repro.experiments.figures import order_error_penalties


def test_bench_order_error_penalties(benchmark, standard_sweep):
    penalties = benchmark.pedantic(
        order_error_penalties,
        kwargs=dict(load=max(LOADS), results=standard_sweep),
        rounds=1,
        iterations=1,
    )
    paper = {
        "ideal": 1.0,
        "simple-2vc": 1.25,
        "advanced-2vc": 1.05,
        "traditional-2vc": float("nan"),
    }
    print()
    print("Control-traffic mean latency relative to Ideal at full load:")
    print(f"  {'architecture':<18} {'measured':>9}   paper")
    for arch, factor in penalties.items():
        print(f"  {arch:<18} x{factor:8.3f}   x{paper[arch]:.2f}")

    assert penalties["ideal"] == 1.0
    # Ordering is the paper's claim; magnitudes are workload-dependent.
    assert 0.98 <= penalties["advanced-2vc"] <= penalties["simple-2vc"] * 1.02
    assert penalties["simple-2vc"] <= 1.4  # paper: 1.25
    assert penalties["advanced-2vc"] <= 1.15  # paper: 1.05
    assert penalties["traditional-2vc"] > 2.0


def test_bench_order_error_rate(benchmark, standard_sweep):
    """Quantify order errors directly: the fraction of deliveries whose
    network latency exceeded what the Ideal architecture achieved at the
    same percentile (a distribution-level view of 'scheduler picked the
    wrong packet')."""

    def tail_excess():
        out = {}
        ideal_cdf = (
            standard_sweep[("ideal", max(LOADS))].collector.get("control").message_cdf()
        )
        for arch in ("simple-2vc", "advanced-2vc"):
            cdf = (
                standard_sweep[(arch, max(LOADS))].collector.get("control").message_cdf()
            )
            # P(latency > ideal's p95): 0.05 means identical distributions.
            out[arch] = 1.0 - cdf.prob_leq(ideal_cdf.quantile(0.95))
        return out

    excess = benchmark.pedantic(tail_excess, rounds=1, iterations=1)
    print()
    for arch, p in excess.items():
        print(f"  {arch:<16} P(latency > ideal p95) = {p:.3f}  (0.050 = no order errors)")
    # Advanced's tail must be at least as close to ideal as Simple's.
    assert excess["advanced-2vc"] <= excess["simple-2vc"] + 0.01
