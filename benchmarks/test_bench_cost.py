"""The Section 6 cost claim, quantified.

"Note that the cost of these architectures is similar, except the Ideal
architecture" -- this bench regenerates that comparison as numbers: the
comparator work each architecture performs per forwarded packet under
the Table 1 mix, plus the static per-port hardware each one implies.
The deployable designs (Traditional/Simple/Advanced) pay zero to a few
O(1) tag comparisons per packet; Ideal needs content-sorted buffers
whose work grows with occupancy -- the reason the paper calls it
unimplementable at high link rates and radix.
"""

from __future__ import annotations

from conftest import TIME_SCALE
from repro.analysis import measure_scheduling_cost
from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import scaled_video_mix
from repro.experiments.presets import make_topology
from repro.sim import units
from repro.stats.report import format_table

ORDER = ("traditional-2vc", "simple-2vc", "advanced-2vc", "ideal")


def test_bench_scheduling_cost(benchmark, bench_topology, bench_seed):
    topology = make_topology(bench_topology)

    def measure_all():
        return {
            name: measure_scheduling_cost(
                ARCHITECTURES[name],
                topology=make_topology(bench_topology),
                seed=bench_seed,
                horizon_ns=600 * units.US,
                mix_config=scaled_video_mix(1.0, TIME_SCALE),
            )
            for name in ORDER
        }

    reports = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "architecture",
                "packets",
                "comparisons/pkt",
                "FIFO mems/port",
                "sorting HW",
                "arbiter comparators",
            ],
            [reports[name].row() for name in ORDER],
            title="Scheduling cost under the Table 1 mix at full load",
        )
    )
    cost = {name: reports[name].comparisons_per_packet for name in ORDER}
    # The paper's cost ordering, and the implementability gap to Ideal.
    assert cost["traditional-2vc"] == 0.0
    assert cost["traditional-2vc"] < cost["simple-2vc"] < cost["advanced-2vc"]
    assert cost["ideal"] > cost["advanced-2vc"]
    assert reports["ideal"].inventory.needs_sorting_hardware
    assert not reports["advanced-2vc"].inventory.needs_sorting_hardware
