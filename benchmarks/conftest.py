"""Shared configuration for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Every file regenerates one artifact of the paper's evaluation (a figure,
a headline claim, or an ablation) and prints the same rows/series the
paper plots, while pytest-benchmark times the representative simulation.

Scale: benchmarks default to the ``tiny`` 16-host network (the paper's
128-endpoint run is ~50x more event traffic -- pass ``--bench-topology
paper`` and expect minutes per data point).  Video time is compressed
50x (``time_scale=0.02``); DESIGN.md explains why that preserves every
deadline relationship.
"""

from __future__ import annotations

import pytest

from repro.sim import units


def pytest_addoption(parser):
    parser.addoption(
        "--bench-topology",
        default="tiny",
        help="topology preset for benchmark sweeps (tiny/small/medium/paper)",
    )
    parser.addoption(
        "--bench-seed", type=int, default=1, help="root RNG seed for benchmark sweeps"
    )


@pytest.fixture(scope="session")
def bench_topology(request):
    return request.config.getoption("--bench-topology")


@pytest.fixture(scope="session")
def bench_seed(request):
    return request.config.getoption("--bench-seed")


#: Timing windows shared by the figure sweeps: warm-up covers the video
#: ramp (one frame period + one target at time_scale 0.02).
TIME_SCALE = 0.02
WARMUP_NS = 1_100 * units.US
MEASURE_NS = 1_600 * units.US
LOADS = (0.3, 0.6, 1.0)


@pytest.fixture(scope="session")
def standard_sweep(bench_topology, bench_seed):
    """One (architecture x load) sweep shared by the fig2/fig3/fig4 benches
    -- they are three views of the same Table 1 runs, as in the paper."""
    from repro.experiments.config import scaled_video_mix
    from repro.experiments.figures import DEFAULT_ARCHS, sweep

    return sweep(
        DEFAULT_ARCHS,
        LOADS,
        topology=bench_topology,
        seed=bench_seed,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        mix_factory=lambda load: scaled_video_mix(load, TIME_SCALE),
    )
