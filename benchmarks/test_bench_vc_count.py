"""The Section 6 counterfactual: "many more VCs" vs two VCs + deadlines.

"In order to achieve something similar [to the EDF architectures' QoS],
it would be necessary to implement many more VCs, but because this is
not affordable almost no final implementation includes them."

This bench builds that alternative -- a conventional FIFO/round-robin
switch with FOUR strict-priority VCs, one per Table 1 class -- and runs
it against the paper's two contenders at full load.  What it shows,
quantitatively:

- the dedicated top VC does rescue control latency (the counterfactual
  "works" for the latency-critical class);
- but video still is not *paced* (latency varies with load/frame size
  instead of sitting at the target), and the bottom best-effort class is
  starved by strict priority instead of receiving a controlled weighted
  share;
- and the silicon bill doubles the buffer memory per port (4 VCs x
  8 KB), which is the affordability point.

So even granted twice the buffers, the conventional design reproduces
only one of the three QoS behaviours -- the paper's argument, in numbers.
"""

from __future__ import annotations

import pytest

from conftest import MEASURE_NS, TIME_SCALE, WARMUP_NS
from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import scaled_video_mix
from repro.experiments.presets import make_topology
from repro.network.fabric import Fabric, FabricParams
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.collectors import MetricsCollector
from repro.stats.report import format_table
from repro.traffic.mix import TrafficMixConfig, build_mix

VC_MAP_4 = {"control": 0, "multimedia": 1, "best-effort": 2, "background": 3}
TARGET_NS = round(10 * units.MS * TIME_SCALE)


def run_variant(name, bench_topology, bench_seed):
    base = scaled_video_mix(1.0, TIME_SCALE)
    if name == "traditional-4vc":
        arch, params = ARCHITECTURES["traditional-2vc"], FabricParams(n_vcs=4)
        mix_config = TrafficMixConfig(
            load=base.load,
            video_fps=base.video_fps,
            video_target_latency_ns=base.video_target_latency_ns,
            video_stream_rate_bytes_per_ns=base.video_stream_rate_bytes_per_ns,
            vc_map=VC_MAP_4,
        )
    else:
        arch, params = ARCHITECTURES[name], FabricParams()
        mix_config = base
    fabric = Fabric(make_topology(bench_topology), arch, params)
    collector = MetricsCollector(warmup_ns=WARMUP_NS)
    fabric.subscribe_delivery(collector.on_delivery)
    mix = build_mix(fabric, RandomStreams(bench_seed), mix_config)
    mix.start()
    fabric.run(until=WARMUP_NS + MEASURE_NS)
    collector.finalize(fabric.engine.now)
    return collector, params


def test_bench_vc_count_counterfactual(benchmark, bench_topology, bench_seed):
    variants = ("traditional-2vc", "traditional-4vc", "advanced-2vc")

    def run_all():
        return {
            name: run_variant(name, bench_topology, bench_seed)
            for name in variants
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    metrics = {}
    for name in variants:
        collector, params = results[name]
        control = collector.get("control").message_latency.mean
        video = collector.get("multimedia")
        video_spread = (
            video.message_cdf().quantile(0.95) - video.message_cdf().quantile(0.05)
        )
        be = collector.throughput("best-effort")
        bg = collector.throughput("background")
        metrics[name] = (control, video.message_latency.mean, video_spread, be, bg)
        rows.append(
            [
                name,
                params.n_vcs,
                params.n_vcs * params.buffer_bytes_per_vc // 1024,
                round(control / 1e3, 2),
                round(video.message_latency.mean / TARGET_NS, 2),
                round(video_spread / 1e3, 1),
                round(be / bg, 2) if bg else float("inf"),
            ]
        )
    print()
    print(
        format_table(
            [
                "variant",
                "VCs",
                "buffer KB/port",
                "control mean (us)",
                "video lat/target",
                "video 5-95% (us)",
                "BE:BG",
            ],
            rows,
            title="Section 6 counterfactual: more VCs vs deadlines",
        )
    )

    ctrl_2vc, _, _, _, _ = metrics["traditional-2vc"]
    ctrl_4vc, video_4vc, spread_4vc, be_4vc, bg_4vc = metrics["traditional-4vc"]
    ctrl_adv, video_adv, spread_adv, be_adv, bg_adv = metrics["advanced-2vc"]

    # The counterfactual fixes control latency...
    assert ctrl_4vc < 0.5 * ctrl_2vc
    # ...but still cannot pace video at the target...
    assert abs(video_adv - TARGET_NS) < abs(video_4vc - TARGET_NS)
    # ...and starves the bottom class instead of weighting it ~2:1.
    assert bg_4vc < 0.7 * be_4vc
    assert be_adv / bg_adv == pytest.approx(2.0, rel=0.4)
