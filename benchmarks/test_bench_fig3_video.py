"""Figure 3: Multimedia (video frame) latency.

Regenerates both panels -- average frame latency vs load and the
frame-latency CDF at full load -- and asserts the paper's claims: under
the EDF architectures the average frame latency sits at the configured
target independent of load (the paper's 10 ms, here time-scaled), with
high concentration, while the traditional architecture's frame latency
varies widely (jitter).

Latency here is per video *frame* (full transfer), exactly as the paper
measures it.
"""

from __future__ import annotations

import pytest

from conftest import LOADS, MEASURE_NS, TIME_SCALE, WARMUP_NS
from repro.experiments.config import scaled_video_mix
from repro.experiments.figures import DEFAULT_ARCHS, fig3_video
from repro.sim import units

TARGET_NS = round(10 * units.MS * TIME_SCALE)


@pytest.fixture(scope="module")
def results(standard_sweep):
    return standard_sweep


def test_bench_fig3_frame_latency(benchmark, results):
    series = benchmark.pedantic(
        fig3_video,
        args=(DEFAULT_ARCHS, LOADS),
        kwargs=dict(results=results, time_scale=TIME_SCALE, cdf_points=10),
        rounds=1,
        iterations=1,
    )
    print()
    print(series.text())

    def stats(arch, load):
        return results[(arch, load)].collector.get("multimedia")

    # EDF architectures: mean frame latency ~ target at every load.
    for arch in ("ideal", "simple-2vc", "advanced-2vc"):
        for load in LOADS:
            mean = stats(arch, load).message_latency.mean
            assert mean == pytest.approx(TARGET_NS, rel=0.2), (arch, load)

    # Concentration: nearly all frames within an absolute ~150 us band of
    # the target (the band is network queueing, independent of scale; at
    # the paper's unscaled 10 ms target it is the +/-1 ms claim).
    slack = 150 * units.US
    for arch in ("ideal", "advanced-2vc"):
        cdf = stats(arch, 1.0).message_cdf()
        within = cdf.prob_leq(TARGET_NS + slack) - cdf.prob_leq(TARGET_NS - slack)
        assert within > 0.9, arch


def test_bench_fig3_traditional_jitter(benchmark, results):
    """'Latency can vary considerably when using Traditional 2 VCs, which
    would introduce a lot of jitter.'"""

    def spreads():
        out = {}
        for arch in DEFAULT_ARCHS:
            cdf = results[(arch, 1.0)].collector.get("multimedia").message_cdf()
            jitter = results[(arch, 1.0)].collector.get("multimedia").jitter
            out[arch] = (cdf.quantile(0.95) - cdf.quantile(0.05), jitter.mean)
        return out

    spread = benchmark.pedantic(spreads, rounds=1, iterations=1)
    print()
    for arch, (width, jitter) in spread.items():
        print(
            f"  {arch:<16} 5-95% spread {width / 1e3:8.1f} us   "
            f"inter-frame jitter {jitter / 1e3:7.1f} us"
        )
    assert spread["traditional-2vc"][0] > 2 * spread["advanced-2vc"][0]
    assert spread["traditional-2vc"][1] > spread["advanced-2vc"][1]
