"""Overhead guard for the observability layer.

The contract (ISSUE 3, ARCHITECTURE.md section 8): a run that does not
ask for metrics pays one attribute load and branch per instrumented
site, nothing more.  Three lines of defence:

- ``test_disabled_path_is_inert`` proves it *structurally*: every null
  instrument is booby-trapped and a full experiment still runs, so the
  disabled hot path provably never records.
- ``test_bench_run_disabled`` / ``test_bench_run_enabled`` time the two
  paths under pytest-benchmark so regressions against the seed numbers
  show up in CI history (the <3% budget is judged on the disabled one).
- ``test_enabled_overhead_is_bounded`` sanity-checks in-process that a
  fully instrumented run (registry + heartbeat + ring trace) stays
  within a loose multiple of the disabled run -- a tripwire for
  accidentally quadratic instrumentation, not a precise budget.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
)
from repro.sim import units
from repro.sim.monitor import Trace

TIME_SCALE = 0.02
WARMUP_NS = 50 * units.US
MEASURE_NS = 200 * units.US


def _config(seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        architecture="advanced-2vc",
        load=1.0,
        seed=seed,
        topology="tiny",
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        mix=scaled_video_mix(1.0, TIME_SCALE),
    )


def _booby_trap(monkeypatch, cls, method):
    def boom(self, *args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError(
            f"{cls.__name__}.{method} called on the disabled path"
        )

    monkeypatch.setattr(cls, method, boom)


def test_disabled_path_is_inert(monkeypatch):
    """With NULL_METRICS (the default), no instrument method ever fires.

    Component constructors may *fetch* null instruments (that is the
    one-time setup cost), but the hot path must be gated so the null
    singletons never see an ``inc``/``set``/``observe``.
    """
    _booby_trap(monkeypatch, _NullCounter, "inc")
    _booby_trap(monkeypatch, _NullGauge, "set")
    _booby_trap(monkeypatch, _NullHistogram, "observe")
    result = run_experiment(_config())
    assert result.metrics is None
    assert result.events_executed > 10_000


def test_disabled_registry_allocates_nothing():
    run_experiment(_config())
    assert NULL_METRICS.snapshot() == {}


def test_bench_run_disabled(benchmark):
    result = benchmark(lambda: run_experiment(_config()))
    assert result.events_executed > 10_000


def test_bench_run_enabled(benchmark):
    def run():
        return run_experiment(
            _config(),
            metrics=MetricsRegistry(),
            trace=Trace(capacity=10_000, ring=True),
            heartbeat_ns=50 * units.US,
        )

    result = benchmark(run)
    assert result.metrics is not None
    assert len(result.metrics) > 10


@pytest.mark.benchmark(disable_gc=False)
def test_enabled_overhead_is_bounded():
    """Full instrumentation must stay within a loose multiple of the
    disabled path.  Deliberately generous (noise-proof): it exists to
    catch pathological instrumentation, not to police the 3% budget --
    pytest-benchmark history does that.
    """

    def wall(run):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()  # simlint: allow-wallclock
            run()
            best = min(best, time.perf_counter() - t0)  # simlint: allow-wallclock
        return best

    disabled = wall(lambda: run_experiment(_config()))
    enabled = wall(
        lambda: run_experiment(
            _config(),
            metrics=MetricsRegistry(),
            trace=Trace(capacity=10_000, ring=True),
            heartbeat_ns=50 * units.US,
        )
    )
    assert enabled < disabled * 2.5, (
        f"instrumented run {enabled:.3f}s vs disabled {disabled:.3f}s "
        f"(ratio {enabled / disabled:.2f}) -- instrumentation cost blew up"
    )
