"""Overhead guard for the observability layer.

The contract (ISSUE 3, ARCHITECTURE.md section 8): a run that does not
ask for metrics pays one attribute load and branch per instrumented
site, nothing more.  Three lines of defence:

- ``test_disabled_path_is_inert`` proves it *structurally*: every null
  instrument is booby-trapped and a full experiment still runs, so the
  disabled hot path provably never records.
- ``test_bench_run_disabled`` / ``test_bench_run_enabled`` time the two
  paths under pytest-benchmark so regressions against the seed numbers
  show up in CI history (the <3% budget is judged on the disabled one).
- ``test_enabled_overhead_is_bounded`` sanity-checks in-process that a
  fully instrumented run (registry + heartbeat + ring trace) stays
  within a loose multiple of the disabled run -- a tripwire for
  accidentally quadratic instrumentation, not a precise budget.

The span tracer (ISSUE 8) extends the same contract:

- ``test_tracing_disabled_path_is_inert`` booby-traps every
  ``NullPacketTracer`` hook -- the structural proof that a run without
  ``tracer=`` never executes a tracing instruction beyond the cached
  ``self._span_on`` branch.
- ``test_tracing_disabled_ab_overhead`` is the interleaved A/B gate:
  bare (default) vs explicit ``NULL_TRACER`` whole runs, alternated
  min-of-N, ratio < 1.01 (+2 ms epsilon for timer noise).  Honest
  caveat: both arms execute byte-identical Python (the null-object
  default *is* the bare path), so this gate mostly proves the harness
  itself is quiet -- the booby-trap above is the real proof that the
  disabled path does nothing.
- ``test_bench_run_traced_head_1pct`` records (but does not gate) the
  tracing-enabled cost at the documented 1% head-sampling operating
  point, so pytest-benchmark history tracks it.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
)
from repro.obs.tracing import NULL_TRACER, NullPacketTracer, PacketTracer
from repro.sim import units
from repro.sim.monitor import Trace

TIME_SCALE = 0.02
WARMUP_NS = 50 * units.US
MEASURE_NS = 200 * units.US


def _config(seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        architecture="advanced-2vc",
        load=1.0,
        seed=seed,
        topology="tiny",
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        mix=scaled_video_mix(1.0, TIME_SCALE),
    )


def _booby_trap(monkeypatch, cls, method):
    def boom(self, *args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError(
            f"{cls.__name__}.{method} called on the disabled path"
        )

    monkeypatch.setattr(cls, method, boom)


def test_disabled_path_is_inert(monkeypatch):
    """With NULL_METRICS (the default), no instrument method ever fires.

    Component constructors may *fetch* null instruments (that is the
    one-time setup cost), but the hot path must be gated so the null
    singletons never see an ``inc``/``set``/``observe``.
    """
    _booby_trap(monkeypatch, _NullCounter, "inc")
    _booby_trap(monkeypatch, _NullGauge, "set")
    _booby_trap(monkeypatch, _NullHistogram, "observe")
    result = run_experiment(_config())
    assert result.metrics is None
    assert result.events_executed > 10_000


def test_disabled_registry_allocates_nothing():
    run_experiment(_config())
    assert NULL_METRICS.snapshot() == {}


def test_bench_run_disabled(benchmark):
    result = benchmark(lambda: run_experiment(_config()))
    assert result.events_executed > 10_000


def test_bench_run_enabled(benchmark):
    def run():
        return run_experiment(
            _config(),
            metrics=MetricsRegistry(),
            trace=Trace(capacity=10_000, ring=True),
            heartbeat_ns=50 * units.US,
        )

    result = benchmark(run)
    assert result.metrics is not None
    assert len(result.metrics) > 10


@pytest.mark.benchmark(disable_gc=False)
def test_enabled_overhead_is_bounded():
    """Full instrumentation must stay within a loose multiple of the
    disabled path.  Deliberately generous (noise-proof): it exists to
    catch pathological instrumentation, not to police the 3% budget --
    pytest-benchmark history does that.
    """

    def wall(run):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()  # simlint: allow-wallclock
            run()
            best = min(best, time.perf_counter() - t0)  # simlint: allow-wallclock
        return best

    disabled = wall(lambda: run_experiment(_config()))
    enabled = wall(
        lambda: run_experiment(
            _config(),
            metrics=MetricsRegistry(),
            trace=Trace(capacity=10_000, ring=True),
            heartbeat_ns=50 * units.US,
        )
    )
    assert enabled < disabled * 2.5, (
        f"instrumented run {enabled:.3f}s vs disabled {disabled:.3f}s "
        f"(ratio {enabled / disabled:.2f}) -- instrumentation cost blew up"
    )


# ----------------------------------------------------------------------
# span tracing (ISSUE 8)
# ----------------------------------------------------------------------
def test_tracing_disabled_path_is_inert(monkeypatch):
    """With NULL_TRACER (the default), no tracer hook ever fires.

    This is the structural <1% proof: components cache
    ``tracer.enabled`` and guard every site with
    ``self._span_on and pkt.traced``, so a run without a tracer executes
    one attribute load + branch per site and *no* tracing code.
    """
    for method in ("begin", "event", "arrive", "finish"):
        _booby_trap(monkeypatch, NullPacketTracer, method)
    result = run_experiment(_config())
    assert result.tracer is None
    assert result.events_executed > 10_000


def test_tracing_disabled_ab_overhead():
    """Interleaved A/B gate: whole runs with the implicit default vs an
    explicitly passed NULL_TRACER, alternated to decorrelate machine
    drift, min-of-N per arm.  Both arms run byte-identical code (that is
    the point of the null-object default), so the ratio gate is < 1.01
    with a small absolute epsilon against timer noise; the booby-trap
    test above is the proof that the disabled path does nothing, this
    one proves the *whole-run* cost picture stayed flat.
    """
    rounds = 4
    bare = float("inf")
    nulled = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()  # simlint: allow-wallclock
        run_experiment(_config())
        bare = min(bare, time.perf_counter() - t0)  # simlint: allow-wallclock
        t0 = time.perf_counter()  # simlint: allow-wallclock
        run_experiment(_config(), tracer=NULL_TRACER)
        nulled = min(nulled, time.perf_counter() - t0)  # simlint: allow-wallclock
    epsilon = 0.002  # 2 ms: scheduler/timer jitter floor on a ~0.2 s run
    assert nulled < bare * 1.01 + epsilon, (
        f"tracing-disabled run {nulled:.4f}s vs bare {bare:.4f}s "
        f"(ratio {nulled / bare:.3f}) -- the disabled tracer is not free"
    )


def test_bench_run_traced_head_1pct(benchmark):
    """Recorded, not gated: tracing enabled at the documented 1%
    head-sampling operating point.  pytest-benchmark history is the
    regression tripwire for the enabled path."""

    def run():
        return run_experiment(
            _config(),
            tracer=PacketTracer(policy="head", rate=0.01, capacity=4096, seed=1),
        )

    result = benchmark(run)
    assert result.tracer is not None
    assert result.tracer.sampled > 0
    assert result.tracer.completed > 0
