"""Ablations of the design choices DESIGN.md calls out.

1. **Eligible-time offset** (Section 3.1: "we have found that 20
   microseconds works well").  Sweeping the offset shows the trade:
   no smoothing -> bursts -> order errors and latency tails; too much
   smoothing adds no further benefit.
2. **Buffer size per VC** (Section 4.1 fixes 8 KB): smaller buffers
   throttle throughput via the credit loop; bigger ones buy little for
   the regulated classes because EDF keeps their queues short.
3. **The appendix's credit rule**: the EDF architectures may check
   credits only on the minimum-deadline candidate.  Violating it
   (masking credit-less candidates like a conventional arbiter) lets a
   take-over queue reorder packets of a flow -- the bench constructs the
   forbidden architecture and counts real out-of-order deliveries that
   the compliant architecture provably (appendix) never produces.
"""

from __future__ import annotations

import pytest

from conftest import MEASURE_NS, TIME_SCALE, WARMUP_NS
from repro.core.queues import TakeOverQueue
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.network.fabric import FabricParams
from repro.sim import units


def run_point(bench_topology, bench_seed, **param_overrides):
    config = ExperimentConfig(
        architecture=param_overrides.pop("architecture", "advanced-2vc"),
        load=1.0,
        seed=bench_seed,
        topology=bench_topology,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        mix=scaled_video_mix(1.0, TIME_SCALE),
        params=FabricParams(**param_overrides),
    )
    return run_experiment(config)


def test_bench_ablation_eligible_offset(benchmark, bench_topology, bench_seed):
    """What eligible-time smoothing buys (Section 3.1's design choice).

    Holding packets until ``deadline - offset`` is what makes video frame
    latency equal the *target* rather than whatever the network happens
    to deliver: without it frames arrive early at light load and late at
    heavy load (= jitter across frames and across load levels).  Control
    latency is insensitive on the Advanced architecture -- its take-over
    queue already absorbs the order errors unsmoothed bursts cause, which
    is itself a finding worth a row in the table.
    """
    points = [(None, 0.4), (None, 1.0), (20 * units.US, 0.4), (20 * units.US, 1.0)]

    def sweep_offsets():
        out = {}
        for offset, load in points:
            config = ExperimentConfig(
                architecture="advanced-2vc",
                load=load,
                seed=bench_seed,
                topology=bench_topology,
                warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS,
                mix=scaled_video_mix(load, TIME_SCALE),
                params=FabricParams(eligible_offset_ns=offset),
            )
            out[(offset, load)] = run_experiment(config)
        return out

    results = benchmark.pedantic(sweep_offsets, rounds=1, iterations=1)
    target = 10 * units.MS * TIME_SCALE
    print()
    print("Eligible-time smoothing ablation (Advanced 2 VCs):")
    video = {}
    for (offset, load), result in results.items():
        stats = result.collector.get("multimedia")
        control = result.collector.get("control").message_latency.mean
        video[(offset, load)] = (stats.message_latency.mean, stats.jitter.mean)
        label = "disabled" if offset is None else f"{offset / 1000:.0f} us"
        print(
            f"  offset {label:>8} load {load:.1f}: video frame mean "
            f"{stats.message_latency.mean / 1e3:7.1f} us (target {target / 1e3:.0f}), "
            f"jitter {stats.jitter.mean / 1e3:6.1f} us, control {control / 1e3:6.2f} us"
        )
    smoothed = 20 * units.US
    # Smoothed: frame latency pinned at the target regardless of load.
    for load in (0.4, 1.0):
        assert video[(smoothed, load)][0] == pytest.approx(target, rel=0.2)
    # Unsmoothed: latency tracks load instead of the target...
    assert video[(None, 1.0)][0] > 1.3 * video[(None, 0.4)][0]
    # ...and inter-frame jitter is several times worse.
    assert video[(None, 1.0)][1] > 3 * video[(smoothed, 0.4)][1]


def test_bench_ablation_buffer_size(benchmark, bench_topology, bench_seed):
    sizes = (4 * units.KB, 8 * units.KB, 32 * units.KB)

    def sweep_buffers():
        return {
            size: run_point(
                bench_topology,
                bench_seed,
                buffer_bytes_per_vc=size,
                host_buffer_bytes_per_vc=size,
            )
            for size in sizes
        }

    results = benchmark.pedantic(sweep_buffers, rounds=1, iterations=1)
    print()
    print("Buffer-per-VC ablation (Advanced 2 VCs, full load):")
    throughput = {}
    for size, result in results.items():
        total = sum(
            result.throughput(c)
            for c in ("control", "multimedia", "best-effort", "background")
        )
        control = result.collector.get("control").message_latency.mean
        throughput[size] = total
        print(
            f"  {size // 1024:>3} KB/VC: delivered {total:6.2f} B/ns total, "
            f"control mean {control / 1e3:6.2f} us"
        )
    # Starving the credit loop (4 KB = two MTUs) must cost throughput
    # relative to the paper's 8 KB.
    assert throughput[4 * units.KB] < throughput[8 * units.KB]
    # The paper's 8 KB already delivers most of what 4x the silicon buys
    # (the extra capacity mainly parks more best-effort backlog in-network).
    assert throughput[8 * units.KB] > 0.7 * throughput[32 * units.KB]


class UnsafeTakeOverQueue(TakeOverQueue):
    """A take-over queue whose dequeue *violates* the appendix's credit
    rule: when the minimum-deadline head does not fit the available
    credits, it offers the other FIFO's head instead.  The appendix warns
    this "would corrupt the dequeuing discipline"; the bench below shows
    the corruption is real out-of-order delivery."""

    def pop_sendable(self, fits):
        candidates = []
        if self._lower:
            candidates.append(self._lower[0])
        if self._upper:
            candidates.append(self._upper[0])
        candidates.sort(key=lambda p: (p.deadline, p.uid))
        for pkt in candidates:
            if fits(pkt):
                if self._upper and pkt is self._upper[0]:
                    self._upper.popleft()
                else:
                    self._lower.popleft()
                self._discharge(pkt)
                return pkt
        return None


def drive_credit_scenario(queue_cls, arrivals, credit_window, replenish_per_round):
    """Feed ``arrivals`` then drain under a byte-credit constraint.

    Returns per-flow departure sequence numbers.  The compliant discipline
    checks credits only on the single exposed head; the unsafe one checks
    both FIFO heads.
    """
    queue = queue_cls()
    departures: dict[str, list[int]] = {}
    credits = credit_window
    pending = list(arrivals)
    for _round in range(10_000):
        while pending:
            flow, seq, deadline, size = pending.pop(0)
            queue.push(
                mkpkt := _make(flow, seq, deadline, size)
            )
        if not queue:
            break
        if isinstance(queue, UnsafeTakeOverQueue):
            pkt = queue.pop_sendable(lambda p: p.size <= credits)
        else:
            head = queue.head()
            pkt = queue.pop() if head is not None and head.size <= credits else None
        if pkt is not None:
            credits -= pkt.size
            departures.setdefault(pkt.tclass, []).append(pkt.seq)
        credits = min(credit_window, credits + replenish_per_round)
    return departures


def _make(flow, seq, deadline, size):
    from repro.network.packet import Packet

    return Packet(
        flow_id=hash(flow) & 0xFFFF, seq=seq, src=0, dst=1,
        size=size, vc=0, tclass=flow, deadline=deadline,
    )


def count_flow_reorderings(departures):
    return sum(
        1
        for seqs in departures.values()
        for a, b in zip(seqs, seqs[1:])
        if b < a
    )


def test_bench_ablation_credit_rule_violation(benchmark, bench_seed):
    """The appendix's flow-control remark, demonstrated.

    Scenario: flow F's first packet is big and sits in the take-over
    FIFO; its second packet is small and lands in the ordered FIFO.  When
    credits are short, the unsafe discipline lets the small second packet
    sneak past the blocked first one -- out-of-order delivery, which these
    networks forbid.  The compliant discipline (only the minimum-deadline
    head is checked for credits) provably never does this (Theorem 3);
    a randomized soak backs the single scenario."""
    # (flow, seq, deadline, size); the drain packet empties the credit
    # window so flow F's big packet finds it short.
    scenario = [
        ("drain", 0, 50, 1500),
        ("other", 0, 500, 256),   # seeds the ordered queue
        ("F", 0, 100, 2000),      # min deadline, too big -> take-over FIFO
        ("F", 1, 550, 128),       # later packet, joins the ordered queue
    ]

    import random as _random

    def soak(queue_cls):
        rng = _random.Random(bench_seed)
        arrivals = []
        clocks = {f: 0 for f in "ABCD"}
        for seq in range(400):
            flow = rng.choice("ABCD")
            clocks[flow] += rng.randint(1, 120)
            arrivals.append(
                (flow, sum(1 for f, *_ in arrivals if f == flow), clocks[flow],
                 rng.choice((128, 512, 2000))))
        return drive_credit_scenario(queue_cls, arrivals, 2048, 700)

    def run_all():
        return {
            "compliant": (
                count_flow_reorderings(
                    drive_credit_scenario(TakeOverQueue, scenario, 2048, 600)
                ),
                count_flow_reorderings(soak(TakeOverQueue)),
            ),
            "unsafe": (
                count_flow_reorderings(
                    drive_credit_scenario(UnsafeTakeOverQueue, scenario, 2048, 600)
                ),
                count_flow_reorderings(soak(UnsafeTakeOverQueue)),
            ),
        }

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("Appendix credit-rule ablation (flow reorderings, scenario / soak):")
    for name, (scenario_count, soak_count) in outcome.items():
        print(f"  {name:<10} scenario {scenario_count}, randomized soak {soak_count}")
    assert outcome["compliant"] == (0, 0)  # Theorem 3 holds
    assert outcome["unsafe"][0] > 0  # the constructed violation fires



def test_bench_ablation_order_error_amplification(benchmark, bench_topology, bench_seed):
    """Where the paper's 25%-vs-5% split comes from.

    Order errors need two ingredients: FIFO *depth* (a high-deadline
    packet can only block what fits behind it -- the paper's 8 KB/VC is
    just four MTUs) and *burstiness* (unsmoothed far-deadline packets in
    front of urgent ones; Section 3.2: "especially if eligible time is
    not being used").  Scanning both knobs shows Simple's penalty over
    Ideal growing toward the paper's ~25% while Advanced's take-over
    queue holds it near the ~5% the paper reports -- i.e. the Advanced
    architecture's advantage *widens* exactly where the paper says it
    matters."""
    grid = [
        (8 * units.KB, 20 * units.US),
        (8 * units.KB, None),
        (32 * units.KB, 20 * units.US),
        (32 * units.KB, None),
    ]

    def scan():
        out = {}
        for buf, offset in grid:
            means = {}
            for arch in ("ideal", "simple-2vc", "advanced-2vc"):
                config = ExperimentConfig(
                    architecture=arch,
                    load=1.0,
                    seed=bench_seed,
                    topology=bench_topology,
                    warmup_ns=WARMUP_NS,
                    measure_ns=MEASURE_NS,
                    mix=scaled_video_mix(1.0, TIME_SCALE),
                    params=FabricParams(
                        buffer_bytes_per_vc=buf, eligible_offset_ns=offset
                    ),
                )
                result = run_experiment(config)
                means[arch] = result.collector.get("control").message_latency.mean
            out[(buf, offset)] = (
                means["simple-2vc"] / means["ideal"],
                means["advanced-2vc"] / means["ideal"],
            )
        return out

    penalties = benchmark.pedantic(scan, rounds=1, iterations=1)
    print()
    print("Order-error amplification (control latency relative to Ideal):")
    print("  buffer  eligible   Simple   Advanced   (paper at full scale: 1.25 / 1.05)")
    for (buf, offset), (simple, advanced) in penalties.items():
        label = "off" if offset is None else f"{offset // 1000}us"
        print(
            f"  {buf // 1024:>3} KB  {label:>8}   x{simple:.3f}   x{advanced:.3f}"
        )
    gentle = penalties[(8 * units.KB, 20 * units.US)]
    harsh = penalties[(32 * units.KB, None)]
    # Deeper queues + bursts amplify Simple's order errors...
    assert harsh[0] > gentle[0] + 0.03
    # ...while the take-over queue keeps Advanced pinned near Ideal.
    assert harsh[1] < 1.08
