"""Parallel campaign execution: speedup and warm-cache replay.

Times a reduced Figure 2 sweep (the four architectures at full load)
through :class:`repro.exec.executor.SweepExecutor` three ways:

- serially (``jobs=1``, the in-process path),
- across a 4-worker process pool (``jobs=4``) -- the acceptance target
  is >= 2x wall-clock speedup on a 4-core machine, and the *output*
  must match the serial run exactly (submission-index merge);
- replayed from a warm content-addressed cache -- zero simulations
  executed, completing in a small fraction of the cold time.

On machines with fewer cores the speedup bound degrades gracefully (a
process pool cannot beat physics); correctness assertions always run.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import TIME_SCALE
from repro.exec.executor import SweepExecutor
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.figures import DEFAULT_ARCHS, fig2_control, sweep
from repro.sim import units

#: Reduced Fig. 2 grid: one full-load point per architecture, with
#: windows sized so the serial sweep takes seconds, not minutes.
SWEEP_LOADS = (1.0,)
SWEEP_WARMUP_NS = 200 * units.US
SWEEP_MEASURE_NS = 600 * units.US


def sweep_configs(topology: str, seed: int):
    return [
        ExperimentConfig(
            architecture=arch,
            load=load,
            seed=seed,
            topology=topology,
            warmup_ns=SWEEP_WARMUP_NS,
            measure_ns=SWEEP_MEASURE_NS,
            mix=scaled_video_mix(load, TIME_SCALE),
        )
        for arch in DEFAULT_ARCHS
        for load in SWEEP_LOADS
    ]


def strip_wall(summary):
    doc = summary.to_dict()
    doc.pop("wall_seconds")
    return doc


def usable_cpus() -> int:
    return len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )


def test_bench_sweep_parallel_speedup(benchmark, bench_topology, bench_seed):
    """Acceptance: --jobs 4 is >= 2x faster than --jobs 1 (given 4 cores)
    and produces identical summaries."""
    configs = sweep_configs(bench_topology, bench_seed)

    t0 = time.perf_counter()
    serial = SweepExecutor(jobs=1).run(configs)
    serial_s = time.perf_counter() - t0

    parallel_exec = SweepExecutor(jobs=4)
    t0 = time.perf_counter()
    parallel = benchmark.pedantic(parallel_exec.run, args=(configs,), rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    # Correctness first: identical results modulo wall_seconds.
    assert [strip_wall(s) for s in parallel] == [strip_wall(s) for s in serial]
    assert parallel_exec.stats()["executed"] == len(configs)

    speedup = serial_s / parallel_s
    cpus = usable_cpus()
    print(f"\n  serial {serial_s:6.2f}s   jobs=4 {parallel_s:6.2f}s   "
          f"speedup x{speedup:.2f}   ({cpus} usable cpus)")
    if cpus >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cpus} cpus, got x{speedup:.2f}"
    elif cpus >= 2:
        assert speedup >= 1.3, f"expected >=1.3x on {cpus} cpus, got x{speedup:.2f}"
    else:
        pytest.skip(
            f"single usable CPU: speedup x{speedup:.2f} not meaningful "
            "(correctness asserted above)"
        )


def test_bench_warm_cache_replay(benchmark, bench_topology, bench_seed, tmp_path):
    """Acceptance: a warm-cache re-run executes zero simulations and its
    figure output is identical to the cold run's."""
    kwargs = dict(
        topology=bench_topology,
        seed=bench_seed,
        warmup_ns=SWEEP_WARMUP_NS,
        measure_ns=SWEEP_MEASURE_NS,
        mix_factory=lambda load: scaled_video_mix(load, TIME_SCALE),
    )

    cold_exec = SweepExecutor(jobs=1, cache_dir=tmp_path)
    t0 = time.perf_counter()
    cold = sweep(DEFAULT_ARCHS, SWEEP_LOADS, executor=cold_exec, **kwargs)
    cold_s = time.perf_counter() - t0
    assert cold_exec.stats()["executed"] == len(cold)

    warm_exec = SweepExecutor(jobs=1, cache_dir=tmp_path)
    t0 = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: sweep(DEFAULT_ARCHS, SWEEP_LOADS, executor=warm_exec, **kwargs),
        rounds=1,
        iterations=1,
    )
    warm_s = time.perf_counter() - t0

    stats = warm_exec.stats()
    assert stats["executed"] == 0, "warm replay must simulate nothing"
    assert stats["cache_hits"] == stats["tasks"] == len(warm)

    # The replay is exact: same figure text, wall_seconds included
    # (summaries come back verbatim from the cache).
    cold_fig = fig2_control(DEFAULT_ARCHS, SWEEP_LOADS, results=cold, cdf_points=8)
    warm_fig = fig2_control(DEFAULT_ARCHS, SWEEP_LOADS, results=warm, cdf_points=8)
    assert warm_fig.text() == cold_fig.text()

    print(f"\n  cold {cold_s:6.2f}s   warm {warm_s:6.3f}s   "
          f"({stats['cache_hits']}/{stats['tasks']} cache hits)")
    assert warm_s < cold_s / 10, "warm replay should be ~free"
