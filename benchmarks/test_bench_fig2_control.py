"""Figure 2: Control-traffic latency under the four architectures.

Regenerates both panels -- average latency vs input load, and the
latency CDF at full load -- and asserts the figure's qualitative content:
the EDF-based architectures dominate the traditional switch by a large
factor, with Ideal <= Advanced <= Simple.

The benchmark times the full-load Advanced run (the paper's headline
configuration).
"""

from __future__ import annotations

import pytest

from conftest import LOADS, MEASURE_NS, TIME_SCALE, WARMUP_NS
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.figures import DEFAULT_ARCHS, fig2_control
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def results(standard_sweep):
    return standard_sweep


def test_bench_fig2_control_latency(benchmark, results, bench_topology, bench_seed):
    config = ExperimentConfig(
        architecture="advanced-2vc",
        load=1.0,
        seed=bench_seed,
        topology=bench_topology,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        mix=scaled_video_mix(1.0, TIME_SCALE),
    )
    benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)

    series = fig2_control(
        DEFAULT_ARCHS, LOADS, results=results, cdf_points=10
    )
    print()
    print(series.text())

    def mean(arch, load=max(LOADS)):
        return results[(arch, load)].collector.get("control").message_latency.mean

    # Figure 2's content: EDF >> traditional; ideal <= advanced <= simple.
    for arch in ("ideal", "simple-2vc", "advanced-2vc"):
        assert mean(arch) * 2 < mean("traditional-2vc")
    assert mean("ideal") <= mean("advanced-2vc") * 1.02
    assert mean("advanced-2vc") <= mean("simple-2vc") * 1.02

    # Latency grows with load for every architecture (left panel's shape).
    for arch in DEFAULT_ARCHS:
        assert mean(arch, LOADS[0]) <= mean(arch, LOADS[-1])


def test_bench_fig2_cdf_tails(benchmark, results):
    """Right panel: 'maximum latency values are almost the same for Ideal
    and Advanced 2 VCs' -- the CDFs' closing edges nearly coincide."""

    def tails():
        out = {}
        for arch in DEFAULT_ARCHS:
            cdf = results[(arch, max(LOADS))].collector.get("control").message_cdf()
            out[arch] = (cdf.quantile(0.5), cdf.quantile(0.99), cdf.max)
        return out

    quantiles = benchmark.pedantic(tails, rounds=1, iterations=1)
    print()
    for arch, (p50, p99, top) in quantiles.items():
        print(f"  {arch:<16} p50 {p50 / 1e3:8.1f} us   p99 {p99 / 1e3:8.1f} us   max {top / 1e3:8.1f} us")
    assert quantiles["advanced-2vc"][1] <= quantiles["ideal"][1] * 1.3
    assert quantiles["traditional-2vc"][1] > quantiles["advanced-2vc"][1]
